"""Vectorized schedule builders vs their loop-based reference implementations."""

import numpy as np
import pytest

from repro.accelerator.tiling import (
    TilingPlan,
    aggregation_access_trace,
    aggregation_access_trace_reference,
    locality_reordering,
    locality_reordering_reference,
    source_processing_order,
    source_processing_order_reference,
)
from repro.errors import SimulationError
from repro.graphs.graph import CSRGraph


def random_graph(rng, max_vertices=120, max_expected_degree=6.0):
    num_vertices = int(rng.integers(1, max_vertices))
    prob = min(1.0, rng.uniform(0, max_expected_degree) / max(num_vertices, 1))
    dense = (rng.random((num_vertices, num_vertices)) < prob).astype(np.float32)
    return CSRGraph.from_dense(dense)


class TestSourceProcessingOrder:
    @pytest.mark.parametrize("mode", ["contiguous", "sac"])
    def test_matches_reference(self, mode):
        rng = np.random.default_rng(0)
        for _ in range(120):
            num_vertices = int(rng.integers(1, 400))
            num_engines = int(rng.integers(1, 24))
            strip_height = int(rng.integers(1, 48))
            got = source_processing_order(num_vertices, num_engines, mode, strip_height)
            want = source_processing_order_reference(
                num_vertices, num_engines, mode, strip_height
            )
            assert np.array_equal(got, want)

    def test_is_permutation(self):
        order = source_processing_order(100, 7, "sac", 8)
        assert sorted(order.tolist()) == list(range(100))

    def test_invalid_arguments(self):
        with pytest.raises(SimulationError):
            source_processing_order(0, 2)
        with pytest.raises(SimulationError):
            source_processing_order(4, 0)
        with pytest.raises(SimulationError):
            source_processing_order(4, 2, "bogus")
        with pytest.raises(SimulationError):
            source_processing_order(4, 2, "sac", strip_height=0)


class TestAggregationAccessTrace:
    @pytest.mark.parametrize("mode", ["contiguous", "sac"])
    def test_matches_reference_on_random_plans(self, mode):
        rng = np.random.default_rng(1)
        for _ in range(60):
            graph = random_graph(rng)
            num_vertices = graph.num_vertices
            plan = TilingPlan(
                source_tile_vertices=(
                    int(rng.integers(1, num_vertices + 1)) if rng.random() < 0.8 else None
                ),
                dest_tile_vertices=(
                    int(rng.integers(1, num_vertices + 1)) if rng.random() < 0.8 else None
                ),
                feature_passes=1,
                assumed_row_lines=4.0,
            )
            num_engines = int(rng.integers(1, 9))
            strip_height = int(rng.integers(1, 40))
            got = aggregation_access_trace(graph, plan, num_engines, mode, strip_height)
            want = aggregation_access_trace_reference(
                graph, plan, num_engines, mode, strip_height
            )
            assert np.array_equal(got, want)

    def test_edge_count_preserved(self):
        rng = np.random.default_rng(2)
        graph = random_graph(rng, max_vertices=80)
        plan = TilingPlan(16, 16, 1, 4.0)
        trace = aggregation_access_trace(graph, plan, 4)
        assert trace.size == graph.num_edges

    def test_empty_graph(self):
        graph = CSRGraph(np.zeros(5, dtype=np.int64), np.zeros(0, dtype=np.int64))
        plan = TilingPlan(2, 2, 1, 4.0)
        assert aggregation_access_trace(graph, plan, 2).size == 0


class TestLocalityReordering:
    def test_matches_reference(self):
        rng = np.random.default_rng(3)
        for _ in range(40):
            graph = random_graph(rng, max_vertices=150, max_expected_degree=4.0)
            got = locality_reordering(graph)
            want = locality_reordering_reference(graph)
            assert np.array_equal(got, want)

    def test_produces_permutation(self):
        rng = np.random.default_rng(4)
        graph = random_graph(rng, max_vertices=100)
        permutation = locality_reordering(graph)
        assert sorted(permutation.tolist()) == list(range(graph.num_vertices))


class TestGraphReorderAndFingerprint:
    def test_reorder_matches_per_row_reference(self):
        rng = np.random.default_rng(5)
        for _ in range(40):
            graph = random_graph(rng, max_vertices=80)
            num_vertices = graph.num_vertices
            permutation = rng.permutation(num_vertices).astype(np.int64)
            got = graph.reorder(permutation)

            inverse = np.empty_like(permutation)
            inverse[permutation] = np.arange(num_vertices, dtype=np.int64)
            indptr = np.zeros(num_vertices + 1, dtype=np.int64)
            indices, weights = [], []
            for new_src in range(num_vertices):
                old_src = int(inverse[new_src])
                start, stop = graph.indptr[old_src], graph.indptr[old_src + 1]
                dests = permutation[graph.indices[start:stop]]
                order = np.argsort(dests, kind="stable")
                indices.append(dests[order])
                weights.append(graph.weights[start:stop][order])
                indptr[new_src + 1] = indptr[new_src] + (stop - start)
            assert np.array_equal(got.indptr, indptr)
            assert np.array_equal(
                got.indices,
                np.concatenate(indices) if indices else np.zeros(0, dtype=np.int64),
            )
            assert np.allclose(
                got.weights,
                np.concatenate(weights) if weights else np.zeros(0, dtype=np.float32),
            )

    def test_fingerprint_stable_and_topology_sensitive(self):
        rng = np.random.default_rng(6)
        graph = random_graph(rng, max_vertices=60)
        clone = CSRGraph(
            graph.indptr.copy(), graph.indices.copy(), graph.weights.copy()
        )
        assert graph.fingerprint() == clone.fingerprint()
        reweighted = graph.with_weights(graph.weights * 2.0)
        assert graph.fingerprint() == reweighted.fingerprint()
        if graph.num_edges:
            transposed = graph.transpose()
            if not np.array_equal(transposed.indices, graph.indices) or not np.array_equal(
                transposed.indptr, graph.indptr
            ):
                assert transposed.fingerprint() != graph.fingerprint()
