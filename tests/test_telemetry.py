"""Telemetry subsystem: spans, counters, metrics documents, and invariance."""

from __future__ import annotations

import json

import pytest

from repro import telemetry
from repro.core.runspec import RunSpec
from repro.core.session import Session
from repro.experiments.cli import main
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import Scenario
from repro.memory.replay import TraceCache
from repro.telemetry.metrics import (
    METRICS_SCHEMA_VERSION,
    cache_hit_ratios,
    diff_counters,
    hit_ratio,
    merge_counters,
    merge_spans,
    render_metrics,
    run_metrics_document,
    sweep_metrics_document,
    write_metrics_json,
)
from repro.telemetry.spans import _NULL_SPAN, SpanRecorder

TINY = dict(max_vertices=64, num_layers=4)


@pytest.fixture(autouse=True)
def _telemetry_off_after():
    """Every test leaves the process-global recorder disabled and empty."""
    yield
    telemetry.set_enabled(False)
    telemetry.reset_spans()


# --------------------------------------------------------------------------- #
# Span recorder
# --------------------------------------------------------------------------- #
class TestSpans:
    def test_spans_nest_into_a_tree(self):
        recorder = SpanRecorder()
        recorder.set_enabled(True)
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
            with recorder.span("inner"):
                pass
        with recorder.span("outer"):
            pass
        snapshot = recorder.snapshot()
        assert set(snapshot) == {"outer"}
        assert snapshot["outer"]["count"] == 2
        assert snapshot["outer"]["total_s"] > 0
        inner = snapshot["outer"]["children"]["inner"]
        assert inner["count"] == 2
        assert "children" not in inner

    def test_disabled_recorder_records_nothing_and_allocates_nothing(self):
        recorder = SpanRecorder()
        assert recorder.span("anything") is _NULL_SPAN
        with recorder.span("anything"):
            pass
        assert recorder.snapshot() == {}

    def test_global_helpers_and_reset(self):
        previous = telemetry.set_enabled(True)
        assert previous is False  # tier-1 default: off
        with telemetry.span("stage"):
            pass
        assert "stage" in telemetry.span_snapshot()
        telemetry.reset_spans()
        assert telemetry.span_snapshot() == {}
        assert telemetry.is_enabled() is True

    def test_exception_inside_span_still_closes_it(self):
        recorder = SpanRecorder()
        recorder.set_enabled(True)
        with pytest.raises(ValueError):
            with recorder.span("failing"):
                raise ValueError("boom")
        assert recorder.snapshot()["failing"]["count"] == 1


# --------------------------------------------------------------------------- #
# Cache counters
# --------------------------------------------------------------------------- #
class TestCounters:
    def test_trace_cache_counts_evictions_and_bytes(self):
        import numpy as np

        cache = TraceCache(max_entries=2)
        for key in ("a", "b", "c"):
            cache.get(key, lambda: np.zeros(8, dtype=np.int64))
        cache.get("c", lambda: None)  # hit
        stats = cache.stats()
        assert stats["misses"] == 3
        assert stats["hits"] == 1
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert stats["bytes"] == 2 * 8 * 8  # two resident 8-int64 arrays
        cache.clear()
        assert cache.stats()["bytes"] == 0
        assert cache.stats()["entries"] == 0

    def test_session_dataset_lru_counters(self):
        session = Session(max_cached_datasets=2)
        session.load_dataset("cora", **TINY)
        session.load_dataset("cora", **TINY)  # hit
        session.load_dataset("citeseer", **TINY)
        session.load_dataset("pubmed", **TINY)  # evicts cora
        caches = session.metrics_snapshot()["caches"]
        assert caches["dataset"] == {
            "hits": 1, "misses": 3, "evictions": 1, "entries": 2,
        }

    def test_session_accelerator_counters(self):
        session = Session()
        session.accelerator("sgcn")
        session.accelerator("sgcn")
        session.accelerator("gcnax")
        accel = session.metrics_snapshot()["caches"]["accelerator"]
        assert accel["hits"] == 1
        assert accel["misses"] == 2
        assert accel["entries"] == 2

    def test_metrics_snapshot_schema(self):
        session = Session()
        session.run(RunSpec(dataset="cora", accelerator="sgcn", **TINY))
        snapshot = session.metrics_snapshot()
        assert snapshot["schema_version"] == METRICS_SCHEMA_VERSION
        assert snapshot["telemetry_enabled"] is False
        assert snapshot["spans"] == {}  # disabled: counters only
        expected_caches = {
            "trace", "measurement", "dataset", "accelerator", "replay_memo",
        }
        assert set(snapshot["caches"]) == expected_caches
        assert snapshot["caches"]["replay_memo"]["engines"] >= 1
        assert snapshot["caches"]["trace"]["bytes"] > 0


# --------------------------------------------------------------------------- #
# Metrics algebra and documents
# --------------------------------------------------------------------------- #
class TestMetricsAlgebra:
    def test_merge_spans_sums_nodes_recursively(self):
        base = {"replay": {"total_s": 1.0, "count": 1,
                           "children": {"eval": {"total_s": 0.5, "count": 2}}}}
        extra = {"replay": {"total_s": 2.0, "count": 3,
                            "children": {"eval": {"total_s": 0.5, "count": 1},
                                         "build": {"total_s": 0.1, "count": 1}}},
                 "timing": {"total_s": 4.0, "count": 3}}
        merged = merge_spans(base, extra)
        assert merged["replay"]["total_s"] == pytest.approx(3.0)
        assert merged["replay"]["count"] == 4
        assert merged["replay"]["children"]["eval"]["count"] == 3
        assert merged["replay"]["children"]["build"]["count"] == 1
        assert merged["timing"]["count"] == 3

    def test_merge_and_diff_counters(self):
        before = {"trace": {"hits": 2, "misses": 5, "entries": 5}}
        after = {"trace": {"hits": 6, "misses": 7, "entries": 4}}
        delta = diff_counters(before, after)
        assert delta == {"trace": {"hits": 4, "misses": 2, "entries": -1}}
        total = merge_counters({"trace": {"hits": 1, "misses": 0, "entries": 1}},
                               delta)
        assert total["trace"] == {"hits": 5, "misses": 2, "entries": 0}

    def test_hit_ratio_edge_cases(self):
        assert hit_ratio({"hits": 3, "misses": 1}) == pytest.approx(0.75)
        assert hit_ratio({"hits": 0, "misses": 0}) is None
        assert cache_hit_ratios({"a": {"hits": 1, "misses": 1}, "b": {}}) == {
            "a": 0.5, "b": None,
        }

    def test_metrics_document_golden_shape(self, tmp_path):
        """Schema v1 golden: the exact top-level shape of both document kinds."""
        run_doc = run_metrics_document(
            {"spans": {}, "caches": {"trace": {"hits": 1, "misses": 1}}},
            scenario_id="abc123",
        )
        assert run_doc == {
            "schema_version": 1,
            "kind": "run-profile",
            "scenario_id": "abc123",
            "spans": {},
            "caches": {"trace": {"hits": 1, "misses": 1}},
            "cache_hit_ratios": {"trace": 0.5},
        }
        sweep_doc = sweep_metrics_document([{"pack": "p", "total_runs": 0}])
        assert sweep_doc == {
            "schema_version": 1,
            "kind": "sweep-profile",
            "sweeps": [{"pack": "p", "total_runs": 0}],
        }
        path = tmp_path / "metrics.json"
        write_metrics_json(path, run_doc)
        assert json.loads(path.read_text()) == run_doc
        rendered = render_metrics(run_doc)
        assert "metrics schema v1 (run-profile)" in rendered
        assert "abc123" in rendered


# --------------------------------------------------------------------------- #
# Sweep profiling (worker-snapshot merge)
# --------------------------------------------------------------------------- #
class TestSweepProfiling:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_profiled_sweep_merges_worker_telemetry(self, workers):
        scenarios = [
            Scenario(dataset=dataset, accelerator="sgcn", **TINY)
            for dataset in ("cora", "citeseer")
        ]
        report = SweepRunner(workers=workers, profile=True).run(scenarios)
        assert report.num_failed == 0
        for outcome in report.outcomes:
            assert outcome.telemetry is not None
            assert outcome.telemetry["spans"]  # each run carries its own spans
        document = report.metrics_document(pack="test")
        assert document["pack"] == "test"
        assert document["total_runs"] == 2
        # Each per-run delta holds exactly one pass through the pipeline, so
        # the merged top-level span counts equal the number of runs.
        for stage in ("build_context", "schedule", "replay", "timing", "energy"):
            assert document["spans"][stage]["count"] == 2
        assert document["caches"]["trace"]["misses"] > 0
        assert document["elapsed_seconds"] == report.elapsed_s
        assert document["runs_per_second"] > 0

    def test_unprofiled_sweep_carries_no_telemetry(self):
        scenario = Scenario(dataset="cora", accelerator="sgcn", **TINY)
        report = SweepRunner(workers=1).run([scenario])
        assert report.outcomes[0].telemetry is None
        assert report.metrics_document()["spans"] == {}

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failure_round_trips_structured_traceback(self, workers):
        bad = Scenario(dataset="atlantis", accelerator="sgcn", **TINY)
        report = SweepRunner(workers=workers).run([bad])
        failed = report.failures[0]
        assert failed.error and "atlantis" in failed.error
        assert failed.error_type and failed.error.startswith(failed.error_type)
        assert failed.traceback and "Traceback (most recent call last)" in failed.traceback
        assert "atlantis" in failed.traceback

    def test_profiling_does_not_change_results(self):
        scenario = Scenario(dataset="cora", accelerator="sgcn", **TINY)
        plain = SweepRunner(workers=1).run([scenario]).outcomes[0]
        profiled = SweepRunner(workers=1, profile=True).run([scenario]).outcomes[0]
        assert json.dumps(plain.result.to_dict(), sort_keys=True) == json.dumps(
            profiled.result.to_dict(), sort_keys=True
        )


# --------------------------------------------------------------------------- #
# Digest invariance (identity neutrality)
# --------------------------------------------------------------------------- #
class TestDigestInvariance:
    def test_results_byte_identical_with_telemetry_enabled(self):
        """Telemetry observes; it must never perturb a result document."""
        specs = [
            RunSpec(dataset=dataset, accelerator=accelerator, variant=variant,
                    **TINY)
            for dataset in ("cora", "nell")
            for accelerator in ("sgcn", "gcnax", "igcn")
            for variant in ("gcn", "gin")
        ]
        baseline = [
            json.dumps(result.to_dict(), sort_keys=True)
            for result in Session().run_many(specs, annotate=False)
        ]
        telemetry.set_enabled(True)
        telemetry.reset_spans()
        instrumented = [
            json.dumps(result.to_dict(), sort_keys=True)
            for result in Session().run_many(specs, annotate=False)
        ]
        assert instrumented == baseline
        assert telemetry.span_snapshot()  # the runs actually recorded spans


# --------------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------------- #
class TestCliObservability:
    def test_profiled_sweep_writes_metrics_and_stats_renders_it(
        self, tmp_path, capsys
    ):
        out_dir = tmp_path / "results"
        assert main(
            [
                "sweep", "hbm-generation", "--quick", "--profile",
                "--out", str(out_dir), "--max-vertices", "64",
            ]
        ) == 0
        capsys.readouterr()
        metrics_path = out_dir / "metrics.json"
        assert metrics_path.is_file()
        document = json.loads(metrics_path.read_text())
        assert document["schema_version"] == METRICS_SCHEMA_VERSION
        assert document["kind"] == "sweep-profile"
        (sweep,) = document["sweeps"]
        assert sweep["pack"] == "hbm-generation"
        assert sweep["simulated"] == sweep["total_runs"] > 0
        assert set(sweep["spans"]) >= {
            "build_context", "schedule", "replay", "timing", "energy",
        }
        assert sweep["cache_hit_ratios"]["trace"] is not None
        assert sweep["elapsed_seconds"] > 0 and sweep["runs_per_second"] > 0

        assert main(["stats", str(metrics_path)]) == 0
        rendered = capsys.readouterr().out
        assert "sweep-profile" in rendered
        assert "replay" in rendered
        assert "runs/s" in rendered

    def test_profiled_run_writes_run_profile(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(
            [
                "run", "--dataset", "cora", "--max-vertices", "64",
                "--layers", "4", "--profile", "--metrics-out", str(metrics_path),
            ]
        ) == 0
        capsys.readouterr()
        document = json.loads(metrics_path.read_text())
        assert document["kind"] == "run-profile"
        assert "replay" in document["spans"]
        assert document["caches"]["trace"]["misses"] >= 1
        assert telemetry.is_enabled() is False  # the CLI restores the flag

    def test_stats_on_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.json")]) == 2
        assert "no metrics document" in capsys.readouterr().err

    def test_quiet_suppresses_narration_but_not_data(self, tmp_path, capsys):
        out_dir = tmp_path / "results"
        assert main(
            [
                "--quiet", "sweep", "hbm-generation", "--quick",
                "--out", str(out_dir), "--max-vertices", "64",
            ]
        ) == 0
        assert capsys.readouterr().out == ""
        assert main(["--quiet", "list"]) == 0
        assert "paper-comparison" in capsys.readouterr().out

    def test_profiled_summary_csv_carries_sweep_throughput_columns(
        self, tmp_path, capsys
    ):
        import csv

        out_dir = tmp_path / "results"
        assert main(
            [
                "sweep", "hbm-generation", "--quick", "--profile",
                "--out", str(out_dir), "--max-vertices", "64",
            ]
        ) == 0
        capsys.readouterr()
        with (out_dir / "hbm-generation" / "summary.csv").open(
            encoding="utf-8", newline=""
        ) as handle:
            rows = list(csv.DictReader(handle))
        assert rows
        elapsed = {row["sweep_elapsed_seconds"] for row in rows}
        throughput = {row["sweep_runs_per_second"] for row in rows}
        assert len(elapsed) == 1 and float(elapsed.pop()) > 0
        assert len(throughput) == 1 and float(throughput.pop()) > 0

    def test_unprofiled_summary_csv_stays_deterministic(self, tmp_path, capsys):
        # Wall-clock columns stay empty without --profile so summary.csv is
        # byte-identical across worker counts and reruns.
        csv_bytes = []
        for workers in ("1", "2"):
            out_dir = tmp_path / f"w{workers}"
            assert main(
                [
                    "sweep", "hbm-generation", "--quick",
                    "--workers", workers, "--no-cache",
                    "--out", str(out_dir), "--max-vertices", "64",
                ]
            ) == 0
            csv_bytes.append(
                (out_dir / "hbm-generation" / "summary.csv").read_bytes()
            )
        capsys.readouterr()
        assert csv_bytes[0] == csv_bytes[1]
        header, first_row = csv_bytes[0].decode("utf-8").splitlines()[:2]
        assert header.endswith("sweep_elapsed_seconds,sweep_runs_per_second")
        assert first_row.endswith(",,")
