"""Engine mechanics: noqa parsing, suppression, discovery, rule selection."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import get_rules, run_lint
from repro.analysis.engine import (
    Finding,
    iter_python_files,
    load_module,
    parse_noqa,
)
from repro.analysis.rules import ALL_RULES, RULE_IDS
from repro.errors import AnalysisError

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


# --------------------------------------------------------------------------- #
# noqa parsing and suppression
# --------------------------------------------------------------------------- #
def test_parse_noqa_single_rule():
    table = parse_noqa("x = 1  # repro: noqa[N1] progress ETA only\n")
    assert table == {1: frozenset({"n1"})}


def test_parse_noqa_comma_separated_and_names():
    table = parse_noqa("y = 2  # repro: noqa[D1, unsorted-identity-iteration]\n")
    assert table == {1: frozenset({"d1", "unsorted-identity-iteration"})}


def test_parse_noqa_is_case_insensitive():
    table = parse_noqa("z = 3  # REPRO: NOQA[n2]\n")
    assert table == {1: frozenset({"n2"})}


def test_noqa_inside_string_literal_does_not_suppress():
    table = parse_noqa('text = "# repro: noqa[N1]"\n')
    assert table == {}


def test_suppression_matches_rule_id_and_name():
    module = load_module(FIXTURES / "n1_noqa.py")
    line = next(iter(module.noqa))
    by_id = Finding(module.display_path, line, 1, "N1", "whatever", "m")
    by_name = Finding(
        module.display_path, line, 1, "ZZ", "timing-outside-telemetry", "m"
    )
    other = Finding(module.display_path, line, 1, "D1", "unseeded-rng", "m")
    assert module.suppressed(by_id)
    assert not module.suppressed(by_name)  # noqa names only N1
    assert not module.suppressed(other)


def test_noqa_on_a_different_line_does_not_suppress():
    module = load_module(FIXTURES / "n1_noqa.py")
    line = next(iter(module.noqa))
    finding = Finding(module.display_path, line + 1, 1, "N1", "n", "m")
    assert not module.suppressed(finding)


# --------------------------------------------------------------------------- #
# file discovery and parse errors
# --------------------------------------------------------------------------- #
def test_iter_python_files_walks_sorted_and_deduped():
    files = iter_python_files([FIXTURES, FIXTURES / "d1_flag.py"])
    assert [str(path) for path in files] == sorted(str(path) for path in files)
    names = [path.name for path in files]
    assert names.count("d1_flag.py") == 1
    assert "n1_pass.py" in names  # the telemetry/ subdirectory is walked
    assert "e0_parse_error.txt" not in names  # only *.py from directories


def test_iter_python_files_skips_hidden_and_cache_dirs(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "skip.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "skip.py").write_text("x = 1\n")
    files = iter_python_files([tmp_path])
    assert [path.name for path in files] == ["ok.py"]


def test_missing_target_raises():
    with pytest.raises(AnalysisError, match="does not exist"):
        iter_python_files([FIXTURES / "no_such_file.py"])


def test_unparseable_file_becomes_an_e0_finding():
    report = run_lint([FIXTURES / "e0_parse_error.txt"], get_rules())
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.rule == "E0"
    assert finding.name == "parse-error"
    assert "does not parse" in finding.message
    assert len(report.files) == 1  # unparseable files still count as checked


# --------------------------------------------------------------------------- #
# rule selection and report bookkeeping
# --------------------------------------------------------------------------- #
def test_battery_has_at_least_eight_rules_with_unique_ids():
    assert len(ALL_RULES) >= 8
    assert len(set(RULE_IDS)) == len(RULE_IDS)
    for rule in ALL_RULES:
        assert rule.rule_id and rule.name and rule.summary


def test_get_rules_selects_by_id_and_name():
    by_id = get_rules(["D1"])
    by_name = get_rules(["unseeded-rng"])
    assert [rule.rule_id for rule in by_id] == ["D1"]
    assert [rule.rule_id for rule in by_name] == ["D1"]
    assert get_rules(["d1", "N2"]) == get_rules(["D1", "print-outside-writer"])


def test_get_rules_unknown_rule_raises():
    with pytest.raises(AnalysisError, match="unknown lint rule"):
        get_rules(["bogus"])


def test_counts_lists_every_active_rule():
    report = run_lint([FIXTURES / "d1_pass.py"], get_rules())
    counts = report.counts()
    assert set(counts) == set(RULE_IDS)
    assert all(value == 0 for value in counts.values())


def test_findings_are_sorted_by_location():
    report = run_lint([FIXTURES], get_rules())
    keys = [finding.sort_key() for finding in report.findings]
    assert keys == sorted(keys)
