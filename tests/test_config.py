"""Edge paths of the core config dataclasses (`repro.core.config`).

Covers the previously-untested corners: ``CacheConfig.scaled`` rounding and
clamping, and ``DRAMConfig``'s efficiency-ordering validation.
"""

import pytest

from repro.core.config import CacheConfig, DRAMConfig
from repro.errors import ConfigurationError


# --------------------------------------------------------------------------- #
# CacheConfig.scaled
# --------------------------------------------------------------------------- #
def test_scaled_rounds_to_way_times_line_units():
    cache = CacheConfig(capacity_bytes=512 * 1024, ways=16, line_bytes=64)
    unit = cache.ways * cache.line_bytes  # 1024 B
    scaled = cache.scaled(0.3)
    assert scaled.capacity_bytes % unit == 0
    # 512 KiB * 0.3 = 157286.4 B -> nearest legal multiple of 1024 is 154 units.
    assert scaled.capacity_bytes == round(512 * 1024 * 0.3 / unit) * unit
    # The other fields are preserved, so the scaled config stays valid.
    assert scaled.ways == cache.ways
    assert scaled.line_bytes == cache.line_bytes
    assert scaled.num_sets == scaled.capacity_bytes // unit


def test_scaled_rounds_half_way_points_consistently():
    cache = CacheConfig(capacity_bytes=4096, ways=4, line_bytes=64)  # unit 256
    # 4096 * 0.15625 = 640 = 2.5 units: Python banker's rounding -> 2 units.
    assert cache.scaled(0.15625).capacity_bytes == 512


def test_scaled_clamps_at_one_line_per_way():
    cache = CacheConfig(capacity_bytes=512 * 1024, ways=16, line_bytes=64)
    unit = cache.ways * cache.line_bytes
    tiny = cache.scaled(1e-9)
    assert tiny.capacity_bytes == unit  # one line per way, never zero
    assert tiny.num_sets == 1
    assert tiny.num_lines == cache.ways


def test_scaled_factor_above_one_grows_capacity():
    cache = CacheConfig(capacity_bytes=256 * 1024, ways=16, line_bytes=64)
    grown = cache.scaled(4.0)
    assert grown.capacity_bytes == 1024 * 1024
    assert grown.num_lines == 4 * cache.num_lines


def test_scaled_identity_factor_is_lossless():
    cache = CacheConfig()
    assert cache.scaled(1.0).capacity_bytes == cache.capacity_bytes


# --------------------------------------------------------------------------- #
# DRAMConfig efficiency ordering
# --------------------------------------------------------------------------- #
def test_dram_accepts_legal_efficiency_ordering():
    config = DRAMConfig(base_efficiency=0.9, random_efficiency=0.4)
    assert config.random_efficiency < config.base_efficiency <= 1.0


def test_dram_boundary_equalities_are_legal():
    # random == base and base == 1.0 are inside the documented bounds.
    config = DRAMConfig(base_efficiency=1.0, random_efficiency=1.0)
    assert config.base_efficiency == config.random_efficiency == 1.0


@pytest.mark.parametrize(
    "base,random_",
    [
        (0.5, 0.8),   # random > base
        (0.8, 0.0),   # random must be strictly positive
        (0.8, -0.1),
        (1.2, 0.5),   # base above 1
    ],
)
def test_dram_rejects_illegal_efficiency_orderings(base, random_):
    with pytest.raises(ConfigurationError, match="efficiencies"):
        DRAMConfig(base_efficiency=base, random_efficiency=random_)
