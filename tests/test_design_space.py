"""The design-space exploration pack, end to end through the sweep stack."""

from __future__ import annotations

import json

import pytest

from repro.accelerator.registry import DESIGN_POINTS, get_design
from repro.experiments.cli import main
from repro.experiments.runner import SweepRunner
from repro.experiments.scenarios import available_packs, get_pack
from repro.experiments.store import ResultStore


def test_pack_shape_and_quick_variant():
    pack = get_pack("design-space")
    assert pack.num_scenarios == 72  # 24 design points x 3 medium datasets
    assert len(pack.design_grid) == 24
    assert len(pack.design_tags) == 24
    quick = get_pack("design-space", quick=True)
    assert quick.num_scenarios == 8
    assert quick.max_vertices <= 128
    assert "design-space" in available_packs()


def test_grid_points_are_distinct_and_non_builtin():
    pack = get_pack("design-space")
    base = get_design("gcnax")
    derived = {base.derive(**point) for point in pack.design_grid}
    assert len(derived) == len(pack.design_grid)
    assert derived.isdisjoint(set(DESIGN_POINTS.values()))


def test_scenarios_validate_and_carry_design_identity():
    specs = get_pack("design-space").expand()  # expand() validates
    assert len({spec.scenario_id for spec in specs}) == len(specs)
    for spec in specs:
        assert spec.design  # every grid point overrides at least the fill
        assert spec.tag  # tags identify the grid axes in exports


def test_pack_runs_end_to_end_through_sweep_runner(tmp_path):
    # The full 24-point grid on one dataset at a tiny scale: every design
    # point must simulate, round-trip the result store, and stay distinct.
    pack = get_pack("design-space", max_vertices=64)
    specs = [spec for spec in pack.expand() if spec.dataset == "pubmed"]
    assert len(specs) == 24
    store = ResultStore(tmp_path / "cache")
    runner = SweepRunner(store=store, workers=1)
    report = runner.run(specs)
    assert report.num_failed == 0
    assert report.num_simulated == 24
    cycles = {
        outcome.scenario.scenario_id: outcome.result.total_cycles
        for outcome in report.successes()
    }
    assert len(cycles) == 24
    # Re-running is answered entirely from the content-addressed cache.
    rerun = runner.run(specs)
    assert rerun.num_cached == 24 and rerun.num_failed == 0


def test_cli_quick_sweep_dry_run(capsys):
    assert main(["sweep", "design-space", "--quick", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "design-space: 8 scenarios" in out


def test_cli_run_routes_design_knobs(capsys):
    assert (
        main(
            [
                "run", "--dataset", "cora", "--accelerator", "gcnax",
                "--max-vertices", "64", "--layers", "4",
                "--set", "tiling_fill_fraction=0.5",
                "--set", "num_engines=4",
            ]
        )
        == 0
    )
    summary = json.loads(capsys.readouterr().out)
    assert json.loads(summary["overrides"]) == {"num_engines": 4}
    assert json.loads(summary["design"]) == {"tiling_fill_fraction": 0.5}


def test_cli_rejects_unknown_set_key(capsys):
    assert (
        main(
            [
                "run", "--dataset", "cora", "--accelerator", "gcnax",
                "--set", "warp_drive=1",
            ]
        )
        == 2
    )
    assert "unknown --set key" in capsys.readouterr().err


def test_cli_accelerators_describe(capsys):
    assert main(["accelerators", "--describe"]) == 0
    out = capsys.readouterr().out
    for name in ("gcnax", "sgcn", "engn"):
        assert f"{name}:" in out
    assert "tiling_fill_fraction" in out
    assert "execution_order" in out


def test_factories_apply_quick_cap_when_called_directly():
    from repro.experiments.scenarios import (
        QUICK_MAX_VERTICES,
        design_space_pack,
        paper_comparison_pack,
    )

    assert design_space_pack(quick=True).max_vertices <= QUICK_MAX_VERTICES
    assert paper_comparison_pack(quick=True).max_vertices <= QUICK_MAX_VERTICES
    assert paper_comparison_pack(quick=False).max_vertices > QUICK_MAX_VERTICES


def test_cli_parses_python_style_booleans(capsys):
    assert (
        main(
            [
                "run", "--dataset", "cora", "--accelerator", "gcnax",
                "--max-vertices", "64", "--layers", "4",
                "--set", "uses_destination_tiling=False",
            ]
        )
        == 0
    )
    summary = json.loads(capsys.readouterr().out)
    assert json.loads(summary["design"]) == {"uses_destination_tiling": False}


def test_cli_set_feature_format_matches_the_flag_spelling(capsys):
    args = ["run", "--dataset", "cora", "--accelerator", "gcnax",
            "--max-vertices", "64", "--layers", "4"]
    assert main(args + ["--set", "feature_format=beicsr"]) == 0
    via_set = json.loads(capsys.readouterr().out)
    assert main(args + ["--feature-format", "beicsr"]) == 0
    via_flag = json.loads(capsys.readouterr().out)
    assert via_set["scenario_id"] == via_flag["scenario_id"]
    assert json.loads(via_set["design"]) == {}


def test_cli_conflicting_format_spellings_error(capsys):
    assert (
        main(
            ["run", "--dataset", "cora", "--accelerator", "gcnax",
             "--feature-format", "csr", "--set", "feature_format=beicsr"]
        )
        == 2
    )
    assert "conflicts" in capsys.readouterr().err
