"""Tests for the content-addressed result store and exporters."""

from __future__ import annotations

import csv
import json

import pytest

from repro.core.results import SimulationResult
from repro.errors import SimulationError
from repro.experiments.runner import run_scenario
from repro.experiments.spec import Scenario
from repro.experiments.store import (
    ResultStore,
    export_scenario_json,
    export_summary_csv,
    load_sweep_rows,
    scenario_cache_key,
    summary_row,
)

TINY = dict(max_vertices=64, num_layers=4)


@pytest.fixture(scope="module")
def tiny_run():
    scenario = Scenario(dataset="cora", accelerator="sgcn", **TINY)
    return scenario, run_scenario(scenario)


def test_put_get_round_trip(tmp_path, tiny_run):
    scenario, result = tiny_run
    store = ResultStore(tmp_path / "cache")
    assert store.get(scenario) is None
    assert not store.contains(scenario)
    store.put(scenario, result)
    assert store.contains(scenario)
    loaded = store.get(scenario)
    assert loaded is not None
    assert loaded.summary() == result.summary()
    assert len(store) == 1


def test_different_scenarios_do_not_collide(tmp_path, tiny_run):
    scenario, result = tiny_run
    store = ResultStore(tmp_path / "cache")
    store.put(scenario, result)
    other = Scenario(dataset="cora", accelerator="gcnax", **TINY)
    assert store.get(other) is None
    with_override = Scenario(
        dataset="cora", accelerator="sgcn",
        overrides={"num_engines": 4}, **TINY,
    )
    assert store.get(with_override) is None


def test_cache_key_is_order_insensitive():
    a = Scenario(
        dataset="cora", accelerator="sgcn",
        overrides={"num_engines": 4, "cache_ways": 8}, **TINY,
    )
    b = Scenario(
        dataset="cora", accelerator="sgcn",
        overrides={"cache_ways": 8, "num_engines": 4}, **TINY,
    )
    assert scenario_cache_key(a) == scenario_cache_key(b)


def test_corrupt_entry_is_quarantined_not_unlinked(tmp_path, tiny_run):
    scenario, result = tiny_run
    store = ResultStore(tmp_path / "cache")
    path = store.put(scenario, result)
    path.write_text("{not json", encoding="utf-8")
    assert store.get(scenario) is None
    assert not path.exists()  # healed: the key is a miss again
    # The damaged file is preserved for forensics, not destroyed...
    quarantined = store.quarantine_dir / path.name
    assert quarantined.is_file()
    assert quarantined.read_text(encoding="utf-8") == "{not json"
    # ...and quarantined entries are invisible to iteration/len.
    assert len(store) == 0
    assert list(store.entries()) == []
    assert store.stats()["corrupt"] == 1
    assert store.stats()["misses"] >= 1


def test_checksum_mismatch_is_detected_and_quarantined(tmp_path, tiny_run):
    scenario, result = tiny_run
    store = ResultStore(tmp_path / "cache")
    path = store.put(scenario, result)
    document = json.loads(path.read_text(encoding="utf-8"))
    document["result"]["tampered"] = True  # bit-rot that still parses
    path.write_text(json.dumps(document), encoding="utf-8")
    assert store.get(scenario) is None  # checksum catches the tamper
    assert (store.quarantine_dir / path.name).is_file()
    assert store.stats()["corrupt"] == 1


def test_store_counts_hits_misses_and_puts(tmp_path, tiny_run):
    scenario, result = tiny_run
    store = ResultStore(tmp_path / "cache")
    assert store.get(scenario) is None
    store.put(scenario, result)
    assert store.get(scenario) is not None
    assert store.stats() == {"hits": 1, "misses": 1, "corrupt": 0, "puts": 1}


def test_entries_iterates_pairs(tmp_path, tiny_run):
    scenario, result = tiny_run
    store = ResultStore(tmp_path / "cache")
    store.put(scenario, result)
    pairs = list(store.entries())
    assert len(pairs) == 1
    loaded_scenario, loaded_result = pairs[0]
    assert loaded_scenario.scenario_id == scenario.scenario_id
    assert loaded_result.summary() == result.summary()


def test_export_and_load_round_trip(tmp_path, tiny_run):
    scenario, result = tiny_run
    out = tmp_path / "out"
    json_path = export_scenario_json(out, scenario, result)
    document = json.loads(json_path.read_text(encoding="utf-8"))
    assert document["scenario"]["dataset"] == "cora"
    rebuilt = SimulationResult.from_dict(document["result"])
    assert rebuilt.summary() == result.summary()

    rows = load_sweep_rows(out)
    assert len(rows) == 1
    assert rows[0]["scenario_id"] == scenario.scenario_id

    csv_path = export_summary_csv(tmp_path / "summary.csv", rows)
    with csv_path.open(encoding="utf-8", newline="") as handle:
        parsed = list(csv.DictReader(handle))
    assert len(parsed) == 1
    assert parsed[0]["dataset"] == "cora"
    assert parsed[0]["accelerator"] == "sgcn"
    assert float(parsed[0]["cycles"]) == pytest.approx(result.total_cycles)


def test_load_sweep_rows_ignores_cache_dir_and_duplicates(tmp_path, tiny_run):
    # A sweep places its cache under the output root; exporting that root
    # must not double-count scenarios (once from the sweep JSON, once from
    # the cache entry), nor count the same scenario twice across layouts.
    scenario, result = tiny_run
    out = tmp_path / "results"
    export_scenario_json(out / "pack", scenario, result)
    ResultStore(out / ".cache").put(scenario, result)
    export_scenario_json(out / "pack-copy", scenario, result)

    rows = load_sweep_rows(out)
    assert len(rows) == 1
    assert rows[0]["scenario_id"] == scenario.scenario_id


def test_export_empty_rows_raises(tmp_path):
    with pytest.raises(SimulationError):
        export_summary_csv(tmp_path / "summary.csv", [])


def test_summary_row_columns(tiny_run):
    scenario, result = tiny_run
    row = summary_row(scenario, result)
    assert row["dataset"] == "cora"
    assert row["cycles"] == result.total_cycles
    assert json.loads(row["overrides"]) == {}
