"""Fault-injection plane: deterministic schedules, scoping, wire round-trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, FaultInjectionError
from repro.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    active_faults,
    fault_point,
    faults_scope,
    load_fault_plan,
)


def test_fault_point_is_a_no_op_when_unarmed():
    assert active_faults() is None
    for site in FAULT_SITES:
        assert fault_point(site) is None


def test_spec_validation_rejects_nonsense():
    with pytest.raises(ConfigurationError):
        FaultSpec(site="stage:warp-drive")
    with pytest.raises(ConfigurationError):
        FaultSpec(site="stage:replay", action="explode")
    with pytest.raises(ConfigurationError):
        FaultSpec(site="stage:replay", times=0)
    with pytest.raises(ConfigurationError):
        FaultSpec(site="stage:replay", after=-1)
    with pytest.raises(ConfigurationError):
        FaultSpec(site="stage:replay", probability=0.0)
    with pytest.raises(ConfigurationError):
        FaultSpec(site="stage:replay", delay_s=-1.0)


def test_raise_triggers_on_the_exact_scheduled_visits():
    plan = FaultPlan([FaultSpec(site="stage:replay", after=1, times=2)])
    with faults_scope(plan):
        assert fault_point("stage:replay") is None  # visit 1: skipped (after=1)
        with pytest.raises(FaultInjectionError):
            fault_point("stage:replay")  # visit 2: fires
        with pytest.raises(FaultInjectionError):
            fault_point("stage:replay")  # visit 3: fires (times=2)
        assert fault_point("stage:replay") is None  # budget exhausted
        assert fault_point("stage:schedule") is None  # other sites untouched
    assert plan.visits["stage:replay"] == 4
    assert plan.triggered["stage:replay"] == 2


def test_injected_error_names_its_site_and_message():
    plan = FaultPlan([FaultSpec(site="store:put", message="disk on fire")])
    with faults_scope(plan):
        with pytest.raises(FaultInjectionError) as excinfo:
            fault_point("store:put")
    assert excinfo.value.site == "store:put"
    assert "disk on fire" in str(excinfo.value)


def test_corrupt_and_delay_return_the_spec_to_the_call_site():
    plan = FaultPlan(
        [
            FaultSpec(site="store:get", action="corrupt"),
            FaultSpec(site="stage:schedule", action="delay", delay_s=0.0),
        ]
    )
    with faults_scope(plan):
        corrupt = fault_point("store:get")
        assert corrupt is not None and corrupt.action == "corrupt"
        delayed = fault_point("stage:schedule")
        assert delayed is not None and delayed.action == "delay"


def test_probabilistic_specs_are_deterministic_across_plan_copies():
    spec = FaultSpec(site="worker:execute", times=None, probability=0.5)
    outcomes = []
    for _ in range(2):
        plan = FaultPlan([spec], seed=11)
        fired = []
        with faults_scope(plan):
            for _ in range(32):
                try:
                    fault_point("worker:execute")
                    fired.append(False)
                except FaultInjectionError:
                    fired.append(True)
        outcomes.append(fired)
    assert outcomes[0] == outcomes[1]
    assert any(outcomes[0]) and not all(outcomes[0])


def test_plan_round_trips_with_fresh_counters():
    plan = FaultPlan([FaultSpec(site="gcn:train", times=1)], seed=3)
    with faults_scope(plan):
        with pytest.raises(FaultInjectionError):
            fault_point("gcn:train")
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.seed == 3
    assert clone.specs == plan.specs
    assert clone.visits == {} and clone.triggered == {}
    with faults_scope(clone):
        with pytest.raises(FaultInjectionError):
            fault_point("gcn:train")  # fresh budget in the copy


def test_scopes_nest_and_restore():
    outer = FaultPlan([FaultSpec(site="store:get")])
    inner = FaultPlan([FaultSpec(site="store:put")])
    with faults_scope(outer):
        assert active_faults() is outer
        with faults_scope(inner):
            assert active_faults() is inner
        assert active_faults() is outer
    assert active_faults() is None


def test_load_fault_plan_validates(tmp_path):
    path = tmp_path / "faults.json"
    path.write_text(
        json.dumps({"seed": 5, "faults": [{"site": "stage:replay", "times": None}]})
    )
    plan = load_fault_plan(path)
    assert plan.seed == 5
    assert plan.specs[0].site == "stage:replay"
    assert plan.specs[0].times is None

    (tmp_path / "broken.json").write_text("{nope")
    with pytest.raises(ConfigurationError):
        load_fault_plan(tmp_path / "broken.json")
    with pytest.raises(ConfigurationError):
        load_fault_plan(tmp_path / "missing.json")
    (tmp_path / "list.json").write_text("[]")
    with pytest.raises(ConfigurationError):
        load_fault_plan(tmp_path / "list.json")
    (tmp_path / "unknown.json").write_text(
        json.dumps({"faults": [{"site": "stage:replay", "color": "red"}]})
    )
    with pytest.raises(ConfigurationError):
        load_fault_plan(tmp_path / "unknown.json")
