"""Session-level trace caching and the bench harness."""

import json

import pytest

from repro.accelerator.simulator import get_replay_backend, set_replay_backend
from repro.core.runspec import RunSpec
from repro.core.session import Session
from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def restore_backend():
    previous = get_replay_backend()
    yield
    set_replay_backend(previous)


class TestSessionTraceCache:
    def test_sweep_over_timing_knobs_reuses_traces(self):
        # Cache-size and frequency overrides change timing, not the schedule
        # shape here: plan_tiling sees the same inputs, so the trace and its
        # replay structure are built once and reused across the grid.
        session = Session()
        specs = [
            RunSpec(
                dataset="cora",
                accelerator="gcnax",
                max_vertices=128,
                overrides={"frequency_ghz": freq},
            )
            for freq in (0.8, 1.0, 1.2, 1.4)
        ]
        session.run_many(specs)
        stats = session.trace_cache.stats()
        first_run_misses = stats["misses"]
        # Everything shareable (trace, engine, per-layer row tables) was
        # built exactly once: the remaining runs add no misses at all.
        session.run_many(specs)
        stats = session.trace_cache.stats()
        assert stats["misses"] == first_run_misses
        assert stats["hits"] >= 3 * len(specs)

    def test_cached_results_identical_to_cold_session(self):
        spec = RunSpec(dataset="citeseer", accelerator="sgcn", max_vertices=128)
        warm = Session()
        first = warm.run(spec).to_dict()
        second = warm.run(spec).to_dict()  # trace-cache hit path
        cold = Session().run(spec).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
        assert json.dumps(first, sort_keys=True) == json.dumps(cold, sort_keys=True)

    def test_reordered_graph_cached_for_igcn(self):
        session = Session()
        spec = RunSpec(dataset="cora", accelerator="igcn", max_vertices=128)
        session.run(spec)
        misses_after_first = session.trace_cache.stats()["misses"]
        session.run(spec)
        assert session.trace_cache.stats()["misses"] == misses_after_first

    def test_clear_caches_drops_traces(self):
        session = Session()
        session.run(RunSpec(dataset="cora", accelerator="gcnax", max_vertices=128))
        assert len(session.trace_cache) > 0
        session.clear_caches()
        assert len(session.trace_cache) == 0

    def test_legacy_backend_bypasses_trace_cache(self):
        set_replay_backend("legacy")
        session = Session()
        session.run(RunSpec(dataset="cora", accelerator="gcnax", max_vertices=128))
        assert len(session.trace_cache) == 0


class TestBenchHarness:
    def test_bench_pack_reports_speedup(self):
        from repro.bench import bench_pack

        result = bench_pack("hbm-generation", max_vertices=96, repeats=1)
        assert result.runs == 18
        assert result.vectorized_s > 0
        assert result.legacy_s is not None and result.legacy_s > 0
        assert result.speedup == result.legacy_s / result.vectorized_s
        document = result.to_dict()
        assert {"pack", "runs", "vectorized_s", "legacy_s", "speedup"} <= set(document)

    def test_run_benchmarks_schema_and_output(self, tmp_path):
        from repro.bench import BENCH_SCHEMA_VERSION, run_benchmarks

        out = tmp_path / "BENCH_test.json"
        document = run_benchmarks(
            cases=[("hbm-generation", 96)], repeats=1, include_legacy=False, out=out
        )
        assert out.exists()
        loaded = json.loads(out.read_text())
        assert loaded == json.loads(json.dumps(document))
        assert loaded["benchmark"] == "trace_engine"
        assert loaded["schema_version"] == BENCH_SCHEMA_VERSION
        assert loaded["results"][0]["legacy_s"] is None
        assert loaded["summary"]["overall_speedup"] is None
        assert loaded["summary"]["total_vectorized_s"] > 0

    def test_backend_restored_after_bench(self):
        from repro.bench import run_benchmarks

        assert get_replay_backend() == "vectorized"
        run_benchmarks(cases=[("hbm-generation", 96)], repeats=1)
        assert get_replay_backend() == "vectorized"

    def test_cli_bench_quick(self, tmp_path, capsys):
        out = tmp_path / "BENCH_quick.json"
        code = main(["bench", "--quick", "--out", str(out)])
        assert code == 0
        assert out.exists()
        loaded = json.loads(out.read_text())
        assert loaded["quick"] is True
        assert loaded["results"][0]["speedup"] is not None
        stdout = capsys.readouterr().out
        assert "speedup" in stdout and "wrote" in stdout
