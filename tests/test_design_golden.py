"""Golden equivalence of the DesignPoint/phase-pipeline refactor.

``tests/golden_design_digests.json`` pins the SHA-256 of every built-in
accelerator's canonical ``SimulationResult`` JSON (all nine datasets x nine
accelerators x three variants) as produced *before* the monolithic
``AcceleratorModel`` was split into ``DesignPoint`` + the five-stage
pipeline.  The refactor is pure restructuring: every digest must still
match byte for byte.

A second check exercises the pipeline stages individually and pins their
composition to the one-call ``simulate()`` wrapper.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.accelerator.pipeline import (
    build_context,
    build_workloads,
    energy,
    replay,
    schedule,
    simulate_design,
    timing,
)
from repro.accelerator.registry import ACCELERATORS, DESIGN_POINTS
from repro.accelerator.simulator import GCN_VARIANTS
from repro.core.config import SystemConfig
from repro.core.results import SimulationResult
from repro.core.runspec import RunSpec
from repro.core.session import Session
from repro.graphs.datasets import FIGURE_ORDER

GOLDEN_PATH = Path(__file__).parent / "golden_design_digests.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def canonical_digest(result: SimulationResult) -> str:
    doc = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("dataset_name", FIGURE_ORDER)
def test_results_byte_identical_to_pre_refactor(dataset_name):
    session = Session()
    mismatches = []
    for variant in GCN_VARIANTS:
        for accelerator in sorted(ACCELERATORS.names()):
            spec = RunSpec(
                dataset=dataset_name,
                accelerator=accelerator,
                variant=variant,
                max_vertices=GOLDEN["max_vertices"],
            )
            digest = canonical_digest(session.run(spec))
            key = f"{dataset_name}/{accelerator}/{variant}"
            if digest != GOLDEN["digests"][key]:
                mismatches.append(key)
    assert not mismatches, f"result drift vs pre-refactor golden: {mismatches}"


def test_golden_covers_every_builtin():
    names = {key.split("/")[1] for key in GOLDEN["digests"]}
    assert names == set(DESIGN_POINTS)


@pytest.mark.parametrize("accelerator", ["gcnax", "awb_gcn", "engn", "igcn", "sgcn"])
def test_stagewise_pipeline_matches_simulate(accelerator):
    """Running the five stages by hand equals the one-call wrapper."""
    session = Session()
    dataset = session.load_dataset("pubmed", max_vertices=128)
    design = DESIGN_POINTS[accelerator]
    config = SystemConfig()

    context = build_context(design, design.format_instance(), dataset, config)
    schedule(context)
    assert context.tiling is not None
    replayed = replay(context, build_workloads(dataset), seed=0, max_sampled_layers=6)
    timed = timing(context, replayed)
    layers = energy(context, timed)

    whole = simulate_design(design, dataset, config=config)
    assert len(layers) == len(whole.layers)
    for staged, direct in zip(layers, whole.layers):
        assert json.dumps(staged.to_dict(), sort_keys=True) == json.dumps(
            direct.to_dict(), sort_keys=True
        )
