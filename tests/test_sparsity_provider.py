"""Sparsity providers: profile bugfix, vectorized slice counts, measured mode.

Covers the measured-sparsity subsystem end to end:

* the :func:`layer_sparsity_profile` mean-drift fix (property-tested across
  the Table II range) plus a golden snapshot of the nine dataset profiles,
  guarding every cached scenario_id built on them;
* the vectorized :func:`per_slice_nonzeros` pinned to its loop reference;
* measured-vs-synthetic semantics: heterogeneous tables that flow into the
  replay stage, calibrated averages, byte-identical synthetic defaults, and
  Session-level memoization of the trained model.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest

from repro import RunSpec, Session
from repro.accelerator.pipeline import (
    build_context,
    build_workloads,
    replay,
    resolve_sparsity_dataset,
    schedule,
)
from repro.accelerator.registry import DESIGN_POINTS
from repro.core.config import SystemConfig
from repro.errors import ConfigurationError, SimulationError
from repro.gcn.providers import (
    SPARSITY_MODES,
    MeasuredSparsityCache,
    MeasuredSparsityProvider,
    SyntheticSparsityProvider,
    depth_scaled_average_sparsity,
    make_sparsity_provider,
    resolve_sparsity_mode,
)
from repro.gcn.sparsity import (
    layer_sparsity_profile,
    per_slice_nonzeros,
    per_slice_nonzeros_reference,
    row_nonzero_distribution,
    sparsity_vs_depth,
)
from repro.graphs.datasets import DATASET_SPECS, load_dataset

TINY = dict(max_vertices=96, num_layers=4)


def digest(result) -> str:
    doc = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# layer_sparsity_profile: mean drift fix
# --------------------------------------------------------------------------- #
class TestProfileMean:
    @pytest.mark.parametrize("name", sorted(DATASET_SPECS))
    @pytest.mark.parametrize("num_layers", [1, 4, 12, 28])
    def test_table_ii_targets_hit_exactly(self, name, num_layers):
        target = DATASET_SPECS[name].intermediate_sparsity
        profile = layer_sparsity_profile(num_layers, target, seed=0)
        assert len(profile) == num_layers
        assert abs(float(np.mean(profile)) - target) <= 1e-9

    @pytest.mark.parametrize("target", [0.05, 0.0501, 0.3, 0.5, 0.7, 0.88, 0.899, 0.9])
    @pytest.mark.parametrize("num_layers", [1, 2, 7, 28, 64])
    @pytest.mark.parametrize("seed", [0, 1, 7, None])
    def test_clipped_targets_converge(self, target, num_layers, seed):
        # 0.88 / 0.05 are the historical drift cases (0.8761 / 0.0619 before
        # the redistribution fix); every target inside [floor, ceiling] must
        # now land within 1e-9.
        profile = layer_sparsity_profile(num_layers, target, seed=seed)
        assert abs(float(np.mean(profile)) - target) <= 1e-9
        assert min(profile) >= 0.05 - 1e-12
        assert max(profile) <= 0.90 + 1e-12

    def test_randomized_targets_converge(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            target = float(rng.uniform(0.05, 0.90))
            num_layers = int(rng.integers(1, 40))
            profile = layer_sparsity_profile(num_layers, target, seed=int(rng.integers(0, 100)))
            assert abs(float(np.mean(profile)) - target) <= 1e-9

    def test_target_outside_band_saturates(self):
        # Unreachable targets pin every layer to the nearest bound instead of
        # looping forever.
        low = layer_sparsity_profile(8, 0.01, seed=0)
        assert low == [0.05] * 8
        high = layer_sparsity_profile(8, 0.99, seed=0)
        assert high == [0.90] * 8

    def test_dataset_profile_golden_snapshot(self):
        """Pin the nine default 28-layer profiles (first/mid/last layer).

        These feed every synthetic-mode simulation: a change here knowingly
        invalidates all cached sweeps (the redistribution fix is a no-op for
        the Table II targets because the clip never binds at defaults).
        """
        golden = {
            "cora": (0.605948, 0.640738, 0.704999),
            "citeseer": (0.641948, 0.676738, 0.740999),
            "pubmed": (0.651948, 0.686738, 0.750999),
            "nell": (0.454948, 0.489738, 0.553999),
            "reddit": (0.528948, 0.563738, 0.627999),
            "flickr": (0.409948, 0.444738, 0.508999),
            "yelp": (0.584948, 0.619738, 0.683999),
            "dblp": (0.539948, 0.574738, 0.638999),
            "github": (0.390948, 0.425738, 0.489999),
        }
        for name, (first, mid, last) in golden.items():
            dataset = load_dataset(name, max_vertices=64)
            profile = dataset.layer_sparsities()
            assert len(profile) == 28
            for got, expected in zip(
                (profile[0], profile[14], profile[27]), (first, mid, last)
            ):
                assert got == pytest.approx(expected, abs=1e-6), name


# --------------------------------------------------------------------------- #
# per_slice_nonzeros vectorization
# --------------------------------------------------------------------------- #
class TestPerSliceNonzeros:
    def test_randomized_equivalence_with_reference(self):
        rng = np.random.default_rng(7)
        for _ in range(60):
            rows = int(rng.integers(1, 50))
            width = int(rng.integers(1, 300))
            slice_size = int(rng.integers(1, width + 8))
            density = float(rng.random())
            matrix = rng.normal(size=(rows, width)) * (rng.random((rows, width)) < density)
            expected = per_slice_nonzeros_reference(matrix, slice_size)
            got = per_slice_nonzeros(matrix, slice_size)
            assert got.dtype == np.int64
            assert np.array_equal(got, expected)

    def test_ragged_last_slice(self):
        matrix = np.ones((3, 10))
        counts = per_slice_nonzeros(matrix, 4)
        assert counts.shape == (3, 3)
        assert np.array_equal(counts, [[4, 4, 2]] * 3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            per_slice_nonzeros(np.ones(5), 2)
        with pytest.raises(SimulationError):
            per_slice_nonzeros(np.ones((2, 3)), 0)


# --------------------------------------------------------------------------- #
# Provider semantics
# --------------------------------------------------------------------------- #
class TestProviders:
    def test_mode_resolution(self):
        assert resolve_sparsity_mode(None) is None
        assert resolve_sparsity_mode("Measured_Residual") == "measured"
        assert resolve_sparsity_mode("SYNTHETIC") == "synthetic"
        assert resolve_sparsity_mode("traditional") == "measured-traditional"
        with pytest.raises(ConfigurationError, match="unknown sparsity mode"):
            resolve_sparsity_mode("bogus")
        for mode in SPARSITY_MODES:
            provider = make_sparsity_provider(mode)
            assert provider.name == mode

    def test_synthetic_provider_matches_historical_draw(self):
        dataset = load_dataset("cora", **TINY)
        provider = SyntheticSparsityProvider()
        assert provider.layer_profile(dataset) is None
        row_nnz, slice_nnz = provider.layer_tables(
            dataset, layer_index=3, num_rows=96, width=256,
            sparsity=0.6, slice_size=96, seed=5,
        )
        expected = row_nonzero_distribution(
            num_rows=96, width=256, sparsity=0.6, seed=5 + 3
        )
        assert slice_nnz is None
        assert np.array_equal(row_nnz, expected)

    def test_measured_tables_are_heterogeneous_and_consistent(self):
        dataset = load_dataset("cora", **TINY)
        provider = MeasuredSparsityProvider()
        row_nnz, slice_nnz = provider.layer_tables(
            dataset, layer_index=2, num_rows=dataset.num_vertices,
            width=dataset.hidden_width, sparsity=0.6, slice_size=96, seed=0,
        )
        assert row_nnz.shape == (dataset.num_vertices,)
        assert len(np.unique(row_nnz)) > 3  # heterogeneous rows
        assert slice_nnz is not None
        assert slice_nnz.shape == (dataset.num_vertices, 3)  # 256 / 96 slices
        assert np.array_equal(slice_nnz.sum(axis=1), row_nnz)
        # per-slice distribution is measured, not an even split
        even = np.ptp(slice_nnz, axis=1)
        assert even.max() > 1

    def test_measured_profile_lands_on_published_average(self):
        dataset = load_dataset("cora", max_vertices=128)  # default 28 layers
        provider = MeasuredSparsityProvider()
        profile = provider.layer_profile(dataset)
        assert len(profile) == 28
        assert float(np.mean(profile)) == pytest.approx(
            dataset.intermediate_sparsity, abs=0.02
        )

    def test_traditional_mode_tracks_fig2a_curve(self):
        dataset = load_dataset("pubmed", **TINY)
        residual = MeasuredSparsityProvider(residual=True)
        traditional = MeasuredSparsityProvider(residual=False)
        mean_residual = float(np.mean(residual.layer_profile(dataset)))
        mean_traditional = float(np.mean(traditional.layer_profile(dataset)))
        assert mean_traditional < mean_residual
        assert mean_traditional == pytest.approx(
            depth_scaled_average_sparsity(
                dataset.intermediate_sparsity, dataset.num_layers, False
            ),
            abs=0.03,
        )

    def test_depth_scaling_anchored_at_paper_operating_point(self):
        assert depth_scaled_average_sparsity(0.661, 28, True) == pytest.approx(0.661)
        assert depth_scaled_average_sparsity(0.661, 4, True) < 0.661
        assert depth_scaled_average_sparsity(0.661, 28, False) < \
            depth_scaled_average_sparsity(0.661, 28, True)
        # monotone in depth for residual networks, like sparsity_vs_depth
        assert sparsity_vs_depth(28, True) > sparsity_vs_depth(4, True)

    def test_harvest_memoized_per_topology(self):
        cache = MeasuredSparsityCache(max_entries=4)
        provider = MeasuredSparsityProvider(cache=cache)
        dataset = load_dataset("cora", **TINY)
        first = provider.measure(dataset)
        again = provider.measure(dataset)
        assert again is first
        stats = cache.stats()
        assert (stats["entries"], stats["hits"], stats["misses"]) == (1, 1, 1)
        assert stats["evictions"] == 0
        # Harvests report their mask + slice-table footprint to the gauge.
        assert stats["bytes"] > 0
        other_depth = dataset.with_layers(3)
        assert provider.measure(other_depth) is not first
        assert cache.stats()["misses"] == 2


# --------------------------------------------------------------------------- #
# Pipeline integration
# --------------------------------------------------------------------------- #
class TestPipelineIntegration:
    def test_measured_row_tables_flow_into_replay(self):
        """Acceptance: measured per-row line-count tables reach ReplayEngine."""
        dataset = load_dataset("cora", **TINY)
        design = DESIGN_POINTS["sgcn"]
        config = SystemConfig()

        def replayed_layers(provider):
            resolved = resolve_sparsity_dataset(dataset, provider)
            context = schedule(
                build_context(
                    design, design.format_instance(), resolved, config,
                    sparsity=provider,
                )
            )
            return replay(
                context, build_workloads(resolved), seed=0, max_sampled_layers=6
            )

        measured = replayed_layers(MeasuredSparsityProvider())
        synthetic = replayed_layers(None)
        assert measured.layers and synthetic.layers
        for layer in measured.layers:
            # heterogeneous per-row transfer-size tables, consumed by the
            # cache replay (layer.replay is the engine's output over them)
            assert len(np.unique(layer.row_lines)) > 1
            assert layer.replay is not None
            assert layer.replay.accesses > 0
        measured_tables = [layer.row_lines for layer in measured.layers]
        synthetic_tables = [layer.row_lines for layer in synthetic.layers]
        assert any(
            not np.array_equal(m, s)
            for m, s in zip(measured_tables, synthetic_tables)
        )

    def test_measured_profile_reaches_workloads(self):
        dataset = load_dataset("cora", **TINY)
        provider = MeasuredSparsityProvider()
        resolved = resolve_sparsity_dataset(dataset, provider)
        workloads = build_workloads(resolved)
        measured_profile = provider.layer_profile(dataset)
        assert [w.output_sparsity for w in workloads] == pytest.approx(
            measured_profile
        )
        # the original memoized dataset instance is untouched
        assert dataset.layer_sparsities() != measured_profile

    def test_measured_tables_follow_the_walked_graph(self):
        """Derived graphs (reorder/transpose) relabel ids: tables must be
        harvested on the graph the trace walks, not the dataset's."""
        dataset = load_dataset("cora", **TINY)
        provider = MeasuredSparsityProvider()
        transposed = dataset.graph.transpose()
        row_direct, _ = provider.layer_tables(
            dataset, layer_index=2, num_rows=dataset.num_vertices,
            width=dataset.hidden_width, sparsity=0.6, slice_size=None, seed=0,
        )
        row_walked, _ = provider.layer_tables(
            dataset, layer_index=2, num_rows=dataset.num_vertices,
            width=dataset.hidden_width, sparsity=0.6, slice_size=None, seed=0,
            graph=transposed,
        )
        # one harvest per topology fingerprint...
        assert provider.cache.stats()["misses"] == 2
        # ...and the walked-graph harvest is its own measurement
        assert not np.array_equal(row_direct, row_walked)

    def test_harvest_drops_float_traces(self):
        provider = MeasuredSparsityProvider()
        measured = provider.measure(load_dataset("cora", **TINY))
        assert measured.model.traces() == []
        assert measured.model._forward_cache is None

    def test_first_layer_never_queries_measured_tables(self):
        provider = MeasuredSparsityProvider()
        dataset = load_dataset("cora", **TINY)
        with pytest.raises(SimulationError, match="intermediate"):
            provider.layer_tables(
                dataset, layer_index=0, num_rows=96, width=256,
                sparsity=0.9, slice_size=None, seed=0,
            )


# --------------------------------------------------------------------------- #
# RunSpec / Session / sweep integration
# --------------------------------------------------------------------------- #
class TestRunSpecAxis:
    def test_sparsity_only_enters_identity_when_set(self):
        plain = RunSpec(dataset="cora", accelerator="sgcn")
        assert "sparsity" not in plain.key()
        assert "sparsity" not in plain.to_dict()
        for mode in SPARSITY_MODES:
            spec = RunSpec(dataset="cora", accelerator="sgcn", sparsity=mode)
            assert spec.key()["sparsity"] == mode
            assert spec.scenario_id != plain.scenario_id

    def test_alias_spellings_share_identity(self):
        a = RunSpec(dataset="cora", accelerator="sgcn", sparsity="measured")
        b = RunSpec(dataset="cora", accelerator="sgcn", sparsity="Measured_Residual")
        assert a == b and a.scenario_id == b.scenario_id

    def test_round_trip_and_label(self):
        spec = RunSpec(
            dataset="pubmed", accelerator="sgcn", sparsity="measured", **TINY
        )
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert "measured" in spec.label()

    def test_validate_rejects_unknown_mode(self):
        spec = RunSpec(dataset="cora", accelerator="sgcn", sparsity="guessed")
        with pytest.raises(ConfigurationError, match="unknown sparsity mode"):
            spec.validate()


class TestSessionIntegration:
    def test_synthetic_mode_byte_identical_to_default(self):
        session = Session()
        default = session.run(RunSpec(dataset="cora", accelerator="sgcn", **TINY))
        synthetic = session.run(
            RunSpec(dataset="cora", accelerator="sgcn", sparsity="synthetic", **TINY)
        )
        assert digest(default) == digest(synthetic)
        assert session.measurement_cache.stats()["misses"] == 0

    def test_measured_mode_changes_results(self):
        session = Session()
        default = session.run(RunSpec(dataset="cora", accelerator="sgcn", **TINY))
        measured = session.run(
            RunSpec(dataset="cora", accelerator="sgcn", sparsity="measured", **TINY)
        )
        assert digest(default) != digest(measured)

    def test_session_memoizes_trained_model_across_runs(self):
        session = Session()
        spec = RunSpec(dataset="cora", accelerator="sgcn", sparsity="measured", **TINY)
        session.run(spec)
        assert session.measurement_cache.stats()["misses"] == 1
        model = next(
            iter(session.measurement_cache._entries.values())
        ).model
        # A second run — and a different accelerator on the same topology —
        # reuse the same harvest (and therefore the same trained model).
        session.run(spec)
        session.run(
            RunSpec(dataset="cora", accelerator="gcnax", sparsity="measured", **TINY)
        )
        assert session.measurement_cache.stats()["misses"] == 1
        assert next(
            iter(session.measurement_cache._entries.values())
        ).model is model
        session.clear_caches()
        assert session.measurement_cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "evictions": 0, "bytes": 0,
        }

    def test_measured_mode_works_across_accelerators(self):
        session = Session()
        for accelerator in ("sgcn", "gcnax", "igcn", "awb_gcn"):
            result = session.run(
                RunSpec(
                    dataset="cora", accelerator=accelerator,
                    sparsity="measured", **TINY,
                )
            )
            assert result.total_cycles > 0


class TestSweepIntegration:
    def test_sparsities_axis_expands_and_validates(self):
        from repro.experiments.spec import SweepSpec

        spec = SweepSpec(
            name="t", datasets=("cora",), accelerators=("sgcn",),
            sparsities=(None, "measured"), max_vertices=96,
        )
        scenarios = spec.expand()
        assert len(scenarios) == spec.num_scenarios == 2
        assert {scenario.sparsity for scenario in scenarios} == {None, "measured"}
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert [s.scenario_id for s in rebuilt.expand()] == [
            s.scenario_id for s in scenarios
        ]

    def test_sparsity_depth_pack_shapes(self):
        from repro.experiments.scenarios import get_pack

        full = get_pack("sparsity-depth")
        assert full.num_scenarios == 24  # 3 datasets x 4 depths x 2 modes
        quick = get_pack("sparsity-depth", quick=True)
        scenarios = quick.expand()
        assert len(scenarios) == 4  # 1 dataset x 2 depths x 2 modes
        assert all(s.sparsity in ("measured", "measured-traditional") for s in scenarios)

    def test_quick_pack_runs_through_sweep_runner(self, tmp_path):
        from repro.experiments.runner import SweepRunner
        from repro.experiments.scenarios import get_pack
        from repro.experiments.store import ResultStore

        scenarios = get_pack("sparsity-depth", quick=True).expand()
        store = ResultStore(tmp_path / "cache")
        report = SweepRunner(store=store).run(scenarios)
        assert report.num_failed == 0
        assert report.num_simulated == len(scenarios)
        again = SweepRunner(store=store).run(scenarios)
        assert again.num_cached == len(scenarios)

    def test_cli_run_accepts_sparsity_flag(self, capsys):
        from repro.experiments.cli import main

        code = main([
            "run", "--dataset", "cora", "--accelerator", "sgcn",
            "--sparsity", "measured", "--max-vertices", "96",
        ])
        assert code == 0
        row = json.loads(capsys.readouterr().out)
        assert row["sparsity"] == "measured"
        assert row["cycles"] > 0
