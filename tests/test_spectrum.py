"""Multi-capacity spectrum replay and replay-knob sweep grouping.

Covers the whole vertical slice of the capacity-sweep fast path:

* ``ReplayEngine.replay_spectrum`` — bit-identical to per-capacity
  ``replay()`` for randomized traces, including capacities below the
  largest row (streaming rows), and seeding the shared ``(table-digest,
  capacity)`` memo so later single-capacity calls are hits;
* the id()-keyed size-table token cache;
* ``TraceCache.clear()`` eviction accounting;
* the schedule-at-nominal-capacity semantics of ``cache_capacity_bytes``
  overrides (``CacheConfig.schedule_capacity`` / ``build_config``);
* ``Session`` replay-knob equivalence classes (``replay_class_key``,
  ``replay_groups``), grouped ``run_many``, and ``run_spectrum``;
* ``SweepRunner`` grouped dispatch on both the serial and pool paths.
"""

import hashlib
import json

from pathlib import Path

import numpy as np
import pytest

from repro.accelerator.registry import ACCELERATORS
from repro.accelerator.simulator import GCN_VARIANTS
from repro.core.config import CacheConfig, SystemConfig
from repro.core.runspec import RunSpec, build_config
from repro.core.session import (
    REPLAY_KNOB_OVERRIDES,
    Session,
    replay_class_key,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import Scenario
from repro.memory.replay import ReplayEngine, TraceCache

KB = 1024


def stats_tuple(stats):
    return (stats.accesses, stats.hits, stats.misses, stats.hit_lines, stats.miss_lines)


class TestReplaySpectrum:
    def test_randomized_spectrum_matches_per_capacity_replay(self):
        rng = np.random.default_rng(11)
        for trial in range(60):
            num_rows = int(rng.integers(1, 50))
            length = int(rng.integers(0, 400))
            trace = rng.integers(0, num_rows, size=length).astype(np.int64)
            sizes = rng.integers(1, 14, size=num_rows).astype(np.int64)
            if trial % 3 == 0:
                sizes[int(rng.integers(0, num_rows))] = 10_000
            # Capacities deliberately straddle the size distribution: some
            # below the largest row (that row streams through), some inside
            # it (several weight groups), some above everything (one group).
            caps = [int(c) for c in rng.integers(1, 120, size=int(rng.integers(1, 7)))]
            caps.append(max(1, int(sizes.max()) - 1))
            spectrum = ReplayEngine(trace).replay_spectrum(sizes, caps)
            assert len(spectrum) == len(caps)
            for cap, got in zip(caps, spectrum):
                want = ReplayEngine(trace).replay(sizes, cap)
                assert stats_tuple(got) == stats_tuple(want)

    def test_spectrum_with_pinned_rows(self):
        rng = np.random.default_rng(12)
        trace = rng.integers(0, 40, size=600).astype(np.int64)
        sizes = rng.integers(1, 8, size=40).astype(np.int64)
        pinned = np.asarray([2, 9, 31], dtype=np.int64)
        caps = [3, 17, 64, 5000]
        spectrum = ReplayEngine(trace, pinned=pinned).replay_spectrum(sizes, caps)
        for cap, got in zip(caps, spectrum):
            want = ReplayEngine(trace, pinned=pinned).replay(sizes, cap)
            assert stats_tuple(got) == stats_tuple(want)

    def test_duplicate_capacities_and_order_preserved(self):
        rng = np.random.default_rng(13)
        trace = rng.integers(0, 20, size=200).astype(np.int64)
        sizes = rng.integers(1, 6, size=20).astype(np.int64)
        caps = [30, 7, 30, 100, 7]
        spectrum = ReplayEngine(trace).replay_spectrum(sizes, caps)
        assert len(spectrum) == len(caps)
        assert stats_tuple(spectrum[0]) == stats_tuple(spectrum[2])
        assert stats_tuple(spectrum[1]) == stats_tuple(spectrum[4])

    def test_randomized_spectrum_many_matches_per_table_spectrum(self):
        rng = np.random.default_rng(16)
        for trial in range(40):
            num_rows = int(rng.integers(1, 40))
            length = int(rng.integers(0, 300))
            trace = rng.integers(0, num_rows, size=length).astype(np.int64)
            tables = [
                rng.integers(1, 14, size=num_rows).astype(np.int64)
                for _ in range(int(rng.integers(1, 6)))
            ]
            if trial % 3 == 0:
                # Streaming rows push some tables onto the per-table
                # fallback inside the same batch call.
                tables[0][int(rng.integers(0, num_rows))] = 10_000
            caps = [int(c) for c in rng.integers(1, 120, size=int(rng.integers(1, 5)))]
            batch = ReplayEngine(trace).replay_spectrum_many(tables, caps)
            assert len(batch) == len(tables)
            for table, per_table in zip(tables, batch):
                assert len(per_table) == len(caps)
                for cap, got in zip(caps, per_table):
                    want = ReplayEngine(trace).replay(table, cap)
                    assert stats_tuple(got) == stats_tuple(want)

    def test_spectrum_many_with_pinned_rows(self):
        rng = np.random.default_rng(17)
        trace = rng.integers(0, 30, size=400).astype(np.int64)
        pinned = np.asarray([4, 11], dtype=np.int64)
        tables = [rng.integers(1, 7, size=30).astype(np.int64) for _ in range(3)]
        caps = [20, 90]
        batch = ReplayEngine(trace, pinned=pinned).replay_spectrum_many(tables, caps)
        for table, per_table in zip(tables, batch):
            for cap, got in zip(caps, per_table):
                want = ReplayEngine(trace, pinned=pinned).replay(table, cap)
                assert stats_tuple(got) == stats_tuple(want)

    def test_spectrum_many_seeds_and_reads_the_memo(self):
        rng = np.random.default_rng(18)
        trace = rng.integers(0, 20, size=200).astype(np.int64)
        tables = [rng.integers(1, 5, size=20).astype(np.int64) for _ in range(2)]
        engine = ReplayEngine(trace)
        engine.replay_spectrum_many(tables, [50, 100])
        misses = engine.memo_misses
        again = engine.replay_spectrum_many(tables, [50, 100])
        assert engine.memo_misses == misses
        assert engine.memo_hits >= 4
        for table, per_table in zip(tables, again):
            for cap, got in zip([50, 100], per_table):
                assert stats_tuple(got) == stats_tuple(
                    ReplayEngine(trace).replay(table, cap)
                )

    def test_spectrum_seeds_the_replay_memo(self):
        rng = np.random.default_rng(14)
        trace = rng.integers(0, 30, size=300).astype(np.int64)
        sizes = rng.integers(1, 6, size=30).astype(np.int64)
        engine = ReplayEngine(trace)
        caps = [10, 40, 160]
        spectrum = engine.replay_spectrum(sizes, caps)
        assert engine.memo_misses == len(caps)
        # Later single-capacity calls are answered from the memo,
        # bit-identical to the spectrum-computed values.
        for cap, from_spectrum in zip(caps, spectrum):
            hits_before = engine.memo_hits
            single = engine.replay(sizes, cap)
            assert engine.memo_hits == hits_before + 1
            assert stats_tuple(single) == stats_tuple(from_spectrum)

    def test_empty_trace_and_invalid_capacity(self):
        engine = ReplayEngine(np.zeros(0, dtype=np.int64))
        spectrum = engine.replay_spectrum(np.asarray([4, 4]), [8, 16])
        assert [stats_tuple(s) for s in spectrum] == [(0, 0, 0, 0, 0)] * 2
        with pytest.raises(ConfigurationError):
            engine.replay_spectrum(np.asarray([4]), [8, 0])

    def test_size_table_token_cached_by_identity(self, monkeypatch):
        import repro.memory.replay as replay_mod

        calls = []
        real = replay_mod.array_token

        def counting(array):
            calls.append(1)
            return real(array)

        monkeypatch.setattr(replay_mod, "array_token", counting)
        rng = np.random.default_rng(15)
        trace = rng.integers(0, 16, size=100).astype(np.int64)
        table = rng.integers(1, 5, size=16).astype(np.int64)
        engine = ReplayEngine(trace)
        engine.replay(table, 20)
        hashes = len(calls)
        assert hashes >= 1
        # Same table object at other capacities: no re-hash.
        engine.replay(table, 21)
        engine.replay_spectrum(table, [22, 23])
        assert len(calls) == hashes
        # A different object with equal contents hashes once more and then
        # lands on the same memo entries.
        engine.replay(table.copy(), 20)
        assert len(calls) == hashes + 1
        assert engine.memo_hits >= 1


class TestTraceCacheAccounting:
    def test_clear_counts_dropped_entries_as_evictions(self):
        cache = TraceCache(max_entries=8)
        for key in range(5):
            cache.get(key, lambda: object())
        cache.get(0, lambda: object())
        assert cache.stats()["entries"] == 5
        cache.clear()
        stats = cache.stats()
        assert stats["evictions"] == 5
        assert stats["entries"] == 0
        assert stats["bytes"] == 0
        # Accounting identity: every miss is either still resident or was
        # evicted (clear() counts each dropped entry).
        assert stats["misses"] == stats["entries"] + stats["evictions"]

    def test_identity_holds_through_lru_eviction_and_clear(self):
        cache = TraceCache(max_entries=3)
        for key in range(7):
            cache.get(key, lambda: key)
        stats = cache.stats()
        assert stats["misses"] == stats["entries"] + stats["evictions"]
        cache.clear()
        stats = cache.stats()
        assert stats["misses"] == stats["entries"] + stats["evictions"]


class TestScheduleCapacityConfig:
    def test_defaults_to_physical_capacity(self):
        cache = CacheConfig()
        assert cache.schedule_capacity_bytes is None
        assert cache.schedule_capacity == cache.capacity_bytes

    def test_explicit_schedule_capacity(self):
        cache = CacheConfig(capacity_bytes=128 * KB, schedule_capacity_bytes=512 * KB)
        assert cache.schedule_capacity == 512 * KB

    def test_schedule_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(schedule_capacity_bytes=0)

    def test_scaled_scales_both_capacities(self):
        cache = CacheConfig(capacity_bytes=256 * KB, schedule_capacity_bytes=512 * KB)
        scaled = cache.scaled(0.5)
        assert scaled.capacity_bytes == 128 * KB
        assert scaled.schedule_capacity_bytes == 256 * KB
        # Without a schedule capacity the field stays unset after scaling.
        assert CacheConfig().scaled(0.5).schedule_capacity_bytes is None

    def test_capacity_override_plans_schedule_at_nominal(self):
        base = SystemConfig()
        config = build_config({"cache_capacity_bytes": 128 * KB}, base)
        assert config.cache.capacity_bytes == 128 * KB
        assert config.cache.schedule_capacity == base.cache.capacity_bytes

    def test_override_equal_to_base_is_a_no_op(self):
        base = SystemConfig()
        config = build_config(
            {"cache_capacity_bytes": base.cache.capacity_bytes}, base
        )
        assert config.cache == base.cache
        assert config.cache.schedule_capacity_bytes is None


class TestReplayClasses:
    def test_replay_knobs_do_not_split_classes(self):
        base = RunSpec(dataset="cora", accelerator="sgcn", max_vertices=64)
        for knob, value in [
            ("cache_capacity_bytes", 128 * KB),
            ("frequency_ghz", 1.4),
            ("dram", "hbm3"),
            ("simd_width", 32),
        ]:
            assert knob in REPLAY_KNOB_OVERRIDES
            sibling = RunSpec(
                dataset="cora",
                accelerator="sgcn",
                max_vertices=64,
                overrides={knob: value},
            )
            assert replay_class_key(sibling) == replay_class_key(base)

    def test_non_replay_knobs_split_classes(self):
        base = RunSpec(dataset="cora", accelerator="sgcn", max_vertices=64)
        for other in [
            RunSpec(dataset="citeseer", accelerator="sgcn", max_vertices=64),
            RunSpec(dataset="cora", accelerator="gcnax", max_vertices=64),
            RunSpec(dataset="cora", accelerator="sgcn", max_vertices=128),
            RunSpec(dataset="cora", accelerator="sgcn", max_vertices=64, seed=1),
            RunSpec(
                dataset="cora",
                accelerator="sgcn",
                max_vertices=64,
                overrides={"sgcn_slice_size": 8},
            ),
        ]:
            assert replay_class_key(other) != replay_class_key(base)

    def test_replay_groups_partition_in_first_seen_order(self):
        specs = []
        for accelerator in ("gcnax", "sgcn"):
            for capacity in (128 * KB, 256 * KB):
                specs.append(
                    RunSpec(
                        dataset="cora",
                        accelerator=accelerator,
                        max_vertices=64,
                        overrides={"cache_capacity_bytes": capacity},
                    )
                )
        # Capacity-major order interleaves the classes.
        interleaved = [specs[0], specs[2], specs[1], specs[3]]
        groups = Session().replay_groups(interleaved)
        assert groups == [[0, 2], [1, 3]]


def _capacity_sweep_specs():
    specs = []
    for accelerator in ("gcnax", "sgcn"):
        for capacity in (128 * KB, 256 * KB, 512 * KB):
            specs.append(
                RunSpec(
                    dataset="cora",
                    accelerator=accelerator,
                    max_vertices=64,
                    overrides={"cache_capacity_bytes": capacity},
                )
            )
    return specs


def _result_docs(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


class TestSessionGroupedExecution:
    def test_grouped_run_many_byte_identical_to_ungrouped(self):
        specs = _capacity_sweep_specs()
        grouped = Session().run_many(specs, annotate=False, grouped=True)
        ungrouped = Session().run_many(specs, annotate=False, grouped=False)
        assert _result_docs(grouped) == _result_docs(ungrouped)

    def test_grouped_execution_order_visits_classes_back_to_back(self):
        specs = _capacity_sweep_specs()
        order = []
        Session().run_many(
            specs,
            annotate=False,
            grouped=True,
            progress=lambda index, spec, result: order.append(index),
        )
        assert order == [0, 1, 2, 3, 4, 5]
        interleaved = [specs[0], specs[3], specs[1], specs[4], specs[2], specs[5]]
        order = []
        Session().run_many(
            interleaved,
            annotate=False,
            grouped=True,
            progress=lambda index, spec, result: order.append(index),
        )
        assert order == [0, 2, 4, 1, 3, 5]

    def test_run_spectrum_matches_individual_runs(self):
        spec = RunSpec(dataset="citeseer", accelerator="sgcn", max_vertices=64)
        capacities = [128 * KB, 512 * KB, 2048 * KB]
        spectrum = Session().run_spectrum(spec, capacities, annotate=False)
        assert len(spectrum) == len(capacities)
        for capacity, result in zip(capacities, spectrum):
            solo = Session().run(
                RunSpec(
                    dataset="citeseer",
                    accelerator="sgcn",
                    max_vertices=64,
                    overrides={"cache_capacity_bytes": capacity},
                )
            )
            assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
                solo.to_dict(), sort_keys=True
            )

    def test_spectrum_points_actually_differ(self):
        # Guard against the sweep degenerating into identical results: the
        # smallest and largest capacity must disagree somewhere.
        spec = RunSpec(dataset="pubmed", accelerator="gcnax", max_vertices=128)
        small, large = Session().run_spectrum(
            spec, [16 * KB, 2048 * KB], annotate=False
        )
        assert json.dumps(small.to_dict(), sort_keys=True) != json.dumps(
            large.to_dict(), sort_keys=True
        )


class TestSweepRunnerGroupedDispatch:
    def _scenarios(self):
        scenarios = []
        for capacity in (128 * KB, 256 * KB, 512 * KB):
            for accelerator in ("gcnax", "sgcn"):
                scenarios.append(
                    Scenario(
                        dataset="cora",
                        accelerator=accelerator,
                        max_vertices=64,
                        num_layers=4,
                        overrides={"cache_capacity_bytes": capacity},
                    )
                )
        return scenarios

    def test_serial_grouped_matches_ungrouped(self):
        scenarios = self._scenarios()
        grouped = SweepRunner(workers=1, grouped=True).run(scenarios)
        ungrouped = SweepRunner(workers=1, grouped=False).run(scenarios)
        assert grouped.num_failed == ungrouped.num_failed == 0
        assert [o.scenario.scenario_id for o in grouped.outcomes] == [
            o.scenario.scenario_id for o in ungrouped.outcomes
        ]
        assert [o.result.summary() for o in grouped.outcomes] == [
            o.result.summary() for o in ungrouped.outcomes
        ]

    def test_pool_grouped_matches_serial(self):
        scenarios = self._scenarios()
        serial = SweepRunner(workers=1, grouped=True).run(scenarios)
        pooled = SweepRunner(workers=2, grouped=True).run(scenarios)
        assert pooled.num_failed == 0
        assert [o.scenario.scenario_id for o in serial.outcomes] == [
            o.scenario.scenario_id for o in pooled.outcomes
        ]
        assert [o.result.summary() for o in serial.outcomes] == [
            o.result.summary() for o in pooled.outcomes
        ]

    def test_grouped_failure_isolated_to_its_scenario(self):
        scenarios = self._scenarios()
        # An invalid capacity fails config validation inside the run; its
        # class siblings must still succeed.
        bad = Scenario(
            dataset="cora",
            accelerator="gcnax",
            max_vertices=64,
            num_layers=4,
            overrides={"cache_capacity_bytes": 1000},  # not a legal multiple
        )
        report = SweepRunner(workers=1, grouped=True).run(scenarios + [bad])
        assert report.num_failed == 1
        assert report.failures[0].scenario.scenario_id == bad.scenario_id
        assert report.num_simulated == len(scenarios)


GOLDEN = json.loads(
    (Path(__file__).parent / "golden_design_digests.json").read_text()
)


class TestGroupedGoldenDigests:
    """Grouped dispatch must not perturb a single golden digest.

    Every built-in design of one dataset runs through ``run_many``'s
    grouped path alongside a capacity-override sibling, so every replay
    class genuinely carries a multi-capacity spectrum — and the base runs
    must still hash to the pre-refactor goldens byte for byte.
    """

    @pytest.mark.parametrize(
        "dataset_name", sorted({key.split("/")[0] for key in GOLDEN["digests"]})
    )
    def test_grouped_sweep_reproduces_goldens(self, dataset_name):
        specs = [
            RunSpec(
                dataset=dataset_name,
                accelerator=accelerator,
                variant=variant,
                max_vertices=GOLDEN["max_vertices"],
            )
            for variant in GCN_VARIANTS
            for accelerator in sorted(ACCELERATORS.names())
        ]
        siblings = [
            RunSpec(
                dataset=spec.dataset,
                accelerator=spec.accelerator,
                variant=spec.variant,
                max_vertices=spec.max_vertices,
                overrides={"cache_capacity_bytes": 64 * KB},
            )
            for spec in specs
        ]
        session = Session()
        results = session.run_many(specs + siblings, annotate=False)
        mismatches = []
        for spec, result in zip(specs, results[: len(specs)]):
            doc = json.dumps(result.to_dict(), sort_keys=True)
            digest = hashlib.sha256(doc.encode("utf-8")).hexdigest()
            key = f"{spec.dataset}/{spec.accelerator}/{spec.variant}"
            if digest != GOLDEN["digests"][key]:
                mismatches.append(key)
        assert not mismatches, f"grouped dispatch drifted from golden: {mismatches}"
