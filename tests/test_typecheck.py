"""The mypy gate, runnable wherever mypy is installed (CI always is).

The container used for simulation work may not carry mypy; in that case the
test skips and CI remains the enforcement point (job ``lint-and-types``).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO = Path(__file__).resolve().parents[1]

CHECKED_PACKAGES = (
    "repro.core",
    "repro.telemetry",
    "repro.analysis",
    "repro.resilience",
)


def test_mypy_gate_passes():
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(REPO / "mypy.ini"),
    ]
    for package in CHECKED_PACKAGES:
        command.extend(["-p", package])
    completed = subprocess.run(
        command,
        cwd=str(REPO),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert completed.returncode == 0, completed.stdout
