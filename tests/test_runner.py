"""Sweep-runner behaviour: determinism, caching, and error isolation."""

from __future__ import annotations

import pytest

from repro.experiments.runner import SweepRunner, run_scenario
from repro.experiments.spec import Scenario, SweepSpec
from repro.experiments.store import ResultStore

TINY = dict(max_vertices=64, num_layers=4)


@pytest.fixture(scope="module")
def small_grid():
    spec = SweepSpec(
        name="grid",
        datasets=["cora", "citeseer"],
        accelerators=["sgcn", "gcnax"],
        seeds=[0, 1],
        max_vertices=64,
    )
    return spec.expand()


def test_run_scenario_is_deterministic():
    scenario = Scenario(dataset="cora", accelerator="sgcn", seed=7, **TINY)
    first = run_scenario(scenario)
    second = run_scenario(scenario)
    assert first.summary() == second.summary()
    assert first.metadata["scenario_id"] == scenario.scenario_id


def test_parallel_sweep_matches_serial(small_grid):
    serial = SweepRunner(workers=1).run(small_grid)
    parallel = SweepRunner(workers=2).run(small_grid)
    assert serial.num_failed == parallel.num_failed == 0
    assert [o.scenario.scenario_id for o in serial.outcomes] == [
        o.scenario.scenario_id for o in parallel.outcomes
    ]
    assert [o.result.summary() for o in serial.outcomes] == [
        o.result.summary() for o in parallel.outcomes
    ]


def test_second_run_is_all_cache_hits(tmp_path, small_grid):
    store = ResultStore(tmp_path / "cache")
    first = SweepRunner(store=store, workers=2).run(small_grid)
    assert first.num_simulated == len(small_grid)
    assert first.num_cached == 0

    second = SweepRunner(store=store, workers=2).run(small_grid)
    assert second.num_simulated == 0
    assert second.num_cached == len(small_grid)
    assert [o.result.summary() for o in first.outcomes] == [
        o.result.summary() for o in second.outcomes
    ]


def test_failing_scenario_does_not_kill_the_sweep(tmp_path):
    good = Scenario(dataset="cora", accelerator="sgcn", **TINY)
    # Bypass SweepSpec validation to inject a scenario that fails inside the
    # worker (unknown dataset).
    bad = Scenario(dataset="atlantis", accelerator="sgcn", **TINY)
    good2 = Scenario(dataset="citeseer", accelerator="sgcn", **TINY)

    store = ResultStore(tmp_path / "cache")
    report = SweepRunner(store=store, workers=2).run([good, bad, good2])
    assert report.num_failed == 1
    assert report.num_simulated == 2
    failed = report.failures[0]
    assert failed.scenario.dataset == "atlantis"
    assert failed.error and "atlantis" in failed.error
    assert not store.contains(bad)
    assert store.contains(good) and store.contains(good2)


def test_keyboard_interrupt_aborts_serial_sweep(monkeypatch):
    from repro.core.session import Session

    def interrupt(self, spec, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(Session, "run", interrupt)
    scenario = Scenario(dataset="cora", accelerator="sgcn", **TINY)
    with pytest.raises(KeyboardInterrupt):
        SweepRunner(workers=1).run([scenario])


def test_progress_callback_sees_every_scenario(small_grid):
    seen = []
    SweepRunner(workers=1).run(
        small_grid, progress=lambda outcome, done, total: seen.append((done, total))
    )
    assert len(seen) == len(small_grid)
    assert seen[-1] == (len(small_grid), len(small_grid))


def test_runner_rejects_bad_parameters():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        SweepRunner(workers=0)
    with pytest.raises(ConfigurationError):
        SweepRunner(chunk_size=0)
