"""Sweep checkpointing: periodic flush, resume accounting, corrupt handling."""

from __future__ import annotations

import json

from repro.resilience.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA_VERSION,
    SweepCheckpoint,
)


def test_checkpoint_round_trips(tmp_path):
    path = tmp_path / "checkpoint.json"
    checkpoint = SweepCheckpoint(path, total=3, flush_interval=100)
    checkpoint.record_success("scenario-a", status="ok", attempts=1)
    checkpoint.record_success("scenario-b", status="degraded", attempts=2)
    checkpoint.record_failure(
        "scenario-c",
        error_type="SimulationError",
        error="boom",
        attempts=3,
        timed_out=True,
    )
    checkpoint.flush()

    document = SweepCheckpoint.load(path)
    assert document is not None
    assert document["schema"] == CHECKPOINT_SCHEMA_VERSION
    assert document["kind"] == CHECKPOINT_KIND
    assert document["total"] == 3
    assert document["completed"]["scenario-a"]["status"] == "ok"
    assert document["completed"]["scenario-b"]["status"] == "degraded"
    failure = document["failures"]["scenario-c"]
    assert failure["error_type"] == "SimulationError"
    assert failure["attempts"] == 3
    assert failure["timed_out"] is True
    assert SweepCheckpoint.completed_ids(document) == {"scenario-a", "scenario-b"}


def test_checkpoint_flushes_on_its_interval(tmp_path):
    path = tmp_path / "checkpoint.json"
    checkpoint = SweepCheckpoint(path, total=4, flush_interval=2)
    checkpoint.record_success("scenario-a")
    assert not path.exists()  # one outcome: below the interval
    checkpoint.record_success("scenario-b")
    assert path.exists()  # second outcome: flushed
    document = SweepCheckpoint.load(path)
    assert set(document["completed"]) == {"scenario-a", "scenario-b"}


def test_unusable_checkpoints_load_as_absent(tmp_path):
    assert SweepCheckpoint.load(tmp_path / "missing.json") is None

    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{half a docum")
    assert SweepCheckpoint.load(corrupt) is None

    wrong_kind = tmp_path / "kind.json"
    wrong_kind.write_text(json.dumps({"kind": "bench", "schema": 1}))
    assert SweepCheckpoint.load(wrong_kind) is None

    future = tmp_path / "future.json"
    future.write_text(
        json.dumps({"kind": CHECKPOINT_KIND, "schema": CHECKPOINT_SCHEMA_VERSION + 1})
    )
    assert SweepCheckpoint.load(future) is None

    assert SweepCheckpoint.completed_ids(None) == set()
