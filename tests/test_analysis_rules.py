"""Per-rule coverage: every rule flags its bad fixture and passes its twin."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import get_rules, run_lint

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

#: rule id -> (flag fixture, pass fixture, expected finding count on flag)
PAIRS = {
    "D1": ("d1_flag.py", "d1_pass.py", 3),
    "D2": ("d2_flag.py", "d2_pass.py", 2),
    "N1": ("n1_flag.py", "telemetry/n1_pass.py", 1),
    "N2": ("n2_flag.py", "n2_pass.py", 1),
    "W1": ("w1_flag.py", "w1_pass.py", 1),
    "S1": ("s1_flag.py", "s1_pass.py", 1),
    "S2": ("s2_flag.py", "s2_pass.py", 2),
    "S3": ("s3_flag.py", "s3_pass.py", 1),
    "C1": ("c1_flag.py", "c1_pass.py", 2),
    "R1": ("r1_flag.py", "r1_pass.py", 2),
    "F1": ("f1_flag.py", "f1_pass.py", 1),
    "F2": ("f2_flag.py", "f2_pass.py", 1),
    "F3": ("f3_flag.py", "f3_pass.py", 1),
}


@pytest.mark.parametrize("rule_id", sorted(PAIRS))
def test_rule_flags_bad_fixture(rule_id):
    flag, _, expected = PAIRS[rule_id]
    report = run_lint([FIXTURES / flag], get_rules([rule_id]))
    assert not report.ok
    assert len(report.findings) == expected
    assert {finding.rule for finding in report.findings} == {rule_id}
    for finding in report.findings:
        assert finding.line > 0 and finding.col > 0
        assert finding.message


@pytest.mark.parametrize("rule_id", sorted(PAIRS))
def test_pass_fixture_is_clean_under_full_battery(rule_id):
    _, passes, _ = PAIRS[rule_id]
    report = run_lint([FIXTURES / passes], get_rules())
    assert report.ok, [finding.location() for finding in report.findings]


def test_d1_names_the_unseeded_calls():
    report = run_lint([FIXTURES / "d1_flag.py"], get_rules(["D1"]))
    messages = " ".join(finding.message for finding in report.findings)
    assert "numpy.random.default_rng" in messages
    assert "numpy.random.rand" in messages
    assert "random.shuffle" in messages


def test_c1_reports_the_missing_keys():
    report = run_lint([FIXTURES / "c1_flag.py"], get_rules(["C1"]))
    messages = " ".join(finding.message for finding in report.findings)
    assert "'elapsed'" in messages
    assert "'traceback'" in messages


def test_c1_stays_silent_without_both_endpoints():
    # A lone consumer (or producer) must not arm the contract check.
    report = run_lint([FIXTURES / "d1_pass.py"], get_rules(["C1"]))
    assert report.ok


def test_noqa_fixture_suppresses_the_n1_finding():
    flagged = run_lint([FIXTURES / "n1_flag.py"], get_rules(["N1"]))
    silenced = run_lint([FIXTURES / "n1_noqa.py"], get_rules(["N1"]))
    assert len(flagged.findings) == 1
    assert silenced.ok


def test_noqa_on_decorator_line_covers_the_def_line():
    # The S1 finding lands on the ``def`` line; the noqa sits on the
    # decorator line above it — span normalisation must connect the two.
    report = run_lint([FIXTURES / "s1_noqa_decorator.py"], get_rules(["S1"]))
    assert report.ok, [finding.location() for finding in report.findings]


def test_whole_fixture_directory_is_noisy():
    # The flag fixtures dominate: a directory walk must find all of them
    # (and skip the explicit-only .txt parse-error fixture).
    report = run_lint([FIXTURES], get_rules())
    expected = sum(count for _, _, count in PAIRS.values())
    assert len(report.findings) == expected
    assert all(finding.rule != "E0" for finding in report.findings)
