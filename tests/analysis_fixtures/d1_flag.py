"""Should-flag fixture for D1 (unseeded-rng): three unseeded draws."""

import random

import numpy as np


def sample():
    rng = np.random.default_rng()
    values = np.random.rand(3)
    random.shuffle(values)
    return rng, values
