"""Should-pass fixture for D2: identity path hashes sorted, canonical JSON."""

import hashlib
import json


def scenario_id(payload):
    blob = json.dumps(payload, sort_keys=True)
    for key, value in sorted(payload.items()):
        blob += f"{key}={value}"
    return hashlib.sha256(blob.encode()).hexdigest()
