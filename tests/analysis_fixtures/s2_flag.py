"""Should-flag fixture for S2: bare except swallowing everything."""


def safe_div(a, b):
    try:
        return a / b
    except:
        return None
