"""Should-flag fixture for S2: handlers that swallow interrupts."""


def safe_div(a, b):
    try:
        return a / b
    except:
        return None


def swallow_everything(path):
    try:
        return path.read_text()
    except BaseException:
        return None
