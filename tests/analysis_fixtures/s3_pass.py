"""Should-pass fixture for S3: the blessed __post_init__ derived-field write."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Point:
    x: int
    doubled: int = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "doubled", self.x * 2)
