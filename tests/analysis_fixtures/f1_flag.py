"""Should-flag fixture for F1: a stage reads a field the identity omits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class RunSpec:
    dataset: str
    seed: int
    tag: str

    def key(self) -> Dict[str, object]:
        return {"dataset": self.dataset, "seed": self.seed}


def build_context(spec: RunSpec) -> int:
    return len(spec.dataset)


def schedule(spec: RunSpec) -> int:
    # Leak: ``tag`` shapes the result but is absent from key().
    return len(spec.tag)
