"""Should-pass fixture for N1: the same timing call, but under telemetry/."""

import time


def run():
    started = time.perf_counter()
    return started
