"""Should-flag fixture for N2: a stray print outside the CLI funnel."""


def announce(message):
    print(message)
