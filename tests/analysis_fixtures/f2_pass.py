"""Should-pass fixture for F2: the declared partition matches the reads."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

SUPPORTED_OVERRIDES = ("cache_ways", "latency_cycles")

REPLAY_KNOB_OVERRIDES = frozenset({"latency_cycles"})


@dataclass(frozen=True)
class CacheConfig:
    ways: int
    latency_cycles: int


def build_config(overrides: Mapping[str, object]) -> CacheConfig:
    cache = CacheConfig(ways=4, latency_cycles=2)
    if "cache_ways" in overrides:
        cache = replace(cache, ways=int(overrides["cache_ways"]))  # type: ignore[call-overload]
    if "latency_cycles" in overrides:
        cache = replace(cache, latency_cycles=int(overrides["latency_cycles"]))  # type: ignore[call-overload]
    return cache


def build_context(config: CacheConfig) -> int:
    return config.ways


def schedule(config: CacheConfig) -> int:
    return 1


def replay(config: CacheConfig) -> int:
    return config.latency_cycles
