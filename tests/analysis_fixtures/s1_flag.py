"""Should-flag fixture for S1: mutable default argument."""


def collect(items=[]):
    items.append(1)
    return items
