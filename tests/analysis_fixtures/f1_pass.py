"""Should-pass fixture for F1: every stage read is covered or ledgered."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class RunSpec:
    dataset: str
    seed: int
    tag: str

    def key(self) -> Dict[str, object]:
        return {"dataset": self.dataset, "seed": self.seed}


def build_context(spec: RunSpec) -> int:
    return len(spec.dataset)


def schedule(spec: RunSpec) -> int:
    return len(spec.tag)  # repro: identity-exempt[RunSpec.tag] display label; never reaches a computation
