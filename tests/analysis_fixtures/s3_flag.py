"""Should-flag fixture for S3: frozen-dataclass mutation outside __post_init__."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    x: int

    def shift(self, dx):
        object.__setattr__(self, "x", self.x + dx)
