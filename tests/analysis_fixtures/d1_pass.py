"""Should-pass fixture for D1 (unseeded-rng): every generator is seeded."""

import random

import numpy as np


def sample(seed):
    rng = np.random.default_rng(seed)
    shuffler = random.Random(seed)
    return rng, shuffler
