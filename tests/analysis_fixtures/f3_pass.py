"""Should-pass fixture for F3: ambient reads are constant or ledgered."""

from __future__ import annotations

from typing import Sequence

FAST_MODE = "fast"

_backend = "reference"


def set_backend(name: str) -> None:
    global _backend
    _backend = name


def replay(trace: Sequence[int]) -> int:
    if _backend == FAST_MODE:  # repro: identity-exempt[global:_backend] both backends are bit-identical
        return len(trace)
    return sum(trace)
