"""Should-flag fixture for W1: module-global write outside a blessed setter."""

_MODE = "fast"


def tweak():
    global _MODE
    _MODE = "slow"
