"""Should-pass fixture for S2: types are named; BaseException re-raises."""


def safe_div(a, b):
    try:
        return a / b
    except ZeroDivisionError:
        return None


def atomic_write(path, payload, cleanup):
    try:
        path.write_text(payload)
    except (KeyboardInterrupt, SystemExit):
        cleanup()
        raise
    except BaseException:
        cleanup()
        raise
