"""Should-pass fixture for S2: the exception type is named."""


def safe_div(a, b):
    try:
        return a / b
    except ZeroDivisionError:
        return None
