"""Suppression fixture: same violation as n1_flag, silenced with a reason."""

import time


def run():
    started = time.perf_counter()  # repro: noqa[N1] fixture: progress ETA only
    return started
