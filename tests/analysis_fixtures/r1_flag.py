"""Should-flag fixture for R1: hand-rolled waiting and unbounded retries."""

import time


def wait_for_file(path):
    time.sleep(0.5)
    return path.exists()


def fetch_forever(source):
    while True:
        try:
            return source.read()
        except OSError:
            continue
