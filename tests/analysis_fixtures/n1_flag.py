"""Should-flag fixture for N1: wall-clock read outside telemetry//bench/."""

import time


def run():
    started = time.perf_counter()
    return started
