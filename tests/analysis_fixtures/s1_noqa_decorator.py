"""Fixture: a noqa on the decorator line silences the def-line finding."""

import functools


@functools.lru_cache(maxsize=None)  # repro: noqa[S1] decorator-line suppression fixture
def lookup(values=[]):
    return len(values)
