"""Should-pass fixture for C1: every consumed key is produced."""


def _execute_payload(request):
    payload = {
        "ok": True,
        "result": request,
        "elapsed": 0.0,
        "error": {"type": "", "message": "", "traceback": ""},
    }
    return payload


def _finish(payload):
    if payload.get("ok"):
        return payload["result"]
    error = payload.get("error")
    return payload["elapsed"], error.get("traceback")
