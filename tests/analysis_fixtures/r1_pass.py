"""Should-pass fixture for R1: waiting goes through the policy layer."""


def fetch_with_budget(source, retry):
    attempts = 0
    while True:
        attempts += 1
        try:
            return source.read()
        except OSError as exc:
            if not retry.should_retry(exc, attempts):
                raise
            retry.sleep_before(attempts, source.name)
