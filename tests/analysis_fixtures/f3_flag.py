"""Should-flag fixture for F3: a stage reads a mutable module global."""

from __future__ import annotations

from typing import Sequence

_active_mode = "fast"


def set_active_mode(name: str) -> None:
    global _active_mode
    _active_mode = name


def replay(trace: Sequence[int]) -> int:
    # Leak: the memoized path branches on un-keyed module state.
    if _active_mode == "fast":
        return len(trace)
    return sum(trace)
