"""Should-pass fixture for W1: the same write, inside a blessed ``set_`` setter."""

_MODE = "fast"


def set_mode(mode):
    global _MODE
    _MODE = mode
