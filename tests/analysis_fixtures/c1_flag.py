"""Should-flag fixture for C1: the consumer reads keys no producer writes.

``_finish`` reads ``payload["elapsed"]`` (never produced — the real key is
``elapsed_s``-style) and ``error.get("traceback")`` (the error dict literal
only carries ``type``/``message``).
"""


def _execute_payload(request):
    payload = {
        "ok": True,
        "result": request,
        "error": {"type": "", "message": ""},
    }
    return payload


def _finish(payload):
    if payload.get("ok"):
        return payload["result"]
    error = payload.get("error")
    return payload["elapsed"], error.get("traceback")
