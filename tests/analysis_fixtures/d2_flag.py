"""Should-flag fixture for D2: unsorted iteration inside an identity path."""

import hashlib
import json


def scenario_id(payload):
    blob = json.dumps(payload)
    for key, value in payload.items():
        blob += f"{key}={value}"
    return hashlib.sha256(blob.encode()).hexdigest()
