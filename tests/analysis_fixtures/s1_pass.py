"""Should-pass fixture for S1: None default, allocated per call."""


def collect(items=None):
    if items is None:
        items = []
    items.append(1)
    return items
