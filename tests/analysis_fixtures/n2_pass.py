"""Should-pass fixture for N2: printing is confined to an OutputWriter."""


class OutputWriter:
    def data(self, message):
        print(message)
