"""RowCache edge-case semantics the replay engine must also honor.

These pin the reference model's behavior for the three tricky cases —
streaming rows, resize-on-reaccess, and eviction order under mixed sizes —
and check the vectorized engine reproduces each one where it applies.
"""

import numpy as np

from repro.memory.replay import ReplayEngine, replay_accesses, replay_trace
from repro.memory.rowcache import RowCache


def stats_tuple(stats):
    return (stats.accesses, stats.hits, stats.misses, stats.hit_lines, stats.miss_lines)


class TestStreamingRows:
    """A row larger than the whole cache streams through, never installed."""

    def test_rowcache_never_installs_oversized_row(self):
        cache = RowCache(8)
        assert not cache.access(0, 16)
        assert cache.used_lines == 0
        assert not cache.contains(0)
        # Re-accessing misses again, paying the full transfer both times.
        assert not cache.access(0, 16)
        assert cache.stats.miss_lines == 32
        assert cache.stats.hits == 0

    def test_oversized_row_does_not_evict_residents(self):
        cache = RowCache(8)
        cache.access(1, 4)
        cache.access(0, 16)  # streams
        assert cache.contains(1)
        assert cache.access(1, 4)  # still a hit

    def test_engine_matches_streaming_semantics(self):
        trace = np.asarray([1, 0, 1, 0, 1], dtype=np.int64)
        sizes = np.asarray([16, 4], dtype=np.int64)  # row 0 streams
        got = replay_trace(trace, sizes, 8)
        cache = RowCache(8)
        cache.access_trace(trace, sizes)
        assert stats_tuple(got) == stats_tuple(cache.stats)
        assert got.hits == 2  # only row 1's re-accesses hit


class TestResizeOnReaccess:
    """Re-access with a larger size misses for the delta only."""

    def test_delta_miss_accounting(self):
        cache = RowCache(32)
        cache.access(0, 4)
        assert cache.stats.miss_lines == 4
        hit = cache.access(0, 10)
        assert not hit
        # Only the 6 new lines are fetched; the cached 4 count as hit lines.
        assert cache.stats.miss_lines == 4 + 6
        assert cache.stats.hit_lines == 4
        assert cache.used_lines == 10

    def test_smaller_reaccess_is_hit_and_keeps_size(self):
        cache = RowCache(32)
        cache.access(0, 10)
        assert cache.access(0, 3)
        assert cache.stats.hit_lines == 3
        assert cache.used_lines == 10  # the larger footprint is retained

    def test_resize_eviction_makes_room(self):
        cache = RowCache(10)
        cache.access(0, 4)
        cache.access(1, 4)
        cache.access(1, 8)  # grows; row 0 must be evicted to fit
        assert not cache.contains(0)
        assert cache.contains(1)
        assert cache.used_lines == 8

    def test_replay_accesses_honors_resize_via_fallback(self):
        rows = np.asarray([0, 1, 0, 2, 0], dtype=np.int64)
        sizes = np.asarray([4, 4, 9, 4, 9], dtype=np.int64)
        got = replay_accesses(rows, sizes, 12)
        cache = RowCache(12)
        for row, size in zip(rows.tolist(), sizes.tolist()):
            cache.access(row, size)
        assert stats_tuple(got) == stats_tuple(cache.stats)


class TestEvictionOrderMixedSizes:
    """LRU eviction discards least-recently-used rows until the miss fits."""

    def test_eviction_is_lru_and_size_aware(self):
        cache = RowCache(12)
        cache.access(0, 6)
        cache.access(1, 4)
        cache.access(2, 2)  # full: 0(6) 1(4) 2(2)
        cache.access(0, 6)  # refresh 0; LRU order now 1, 2, 0
        cache.access(3, 5)  # needs 5: evicts 1(4) then 2(2)
        assert not cache.contains(1)
        assert not cache.contains(2)
        assert cache.contains(0) and cache.contains(3)
        assert cache.used_lines == 11

    def test_engine_matches_mixed_size_eviction(self):
        # Deterministic mixed-size pattern exercising the same order.
        trace = np.asarray([0, 1, 2, 0, 3, 1, 2, 0, 3, 2, 1, 0], dtype=np.int64)
        sizes = np.asarray([6, 4, 2, 5], dtype=np.int64)
        for capacity in (7, 10, 12, 17):
            got = replay_trace(trace, sizes, capacity)
            cache = RowCache(capacity)
            cache.access_trace(trace, sizes)
            assert stats_tuple(got) == stats_tuple(cache.stats), capacity

    def test_engine_matches_adversarial_random_mixes(self):
        rng = np.random.default_rng(99)
        for _ in range(60):
            num_rows = int(rng.integers(2, 12))
            trace = rng.integers(0, num_rows, size=int(rng.integers(10, 200)))
            sizes = rng.integers(1, 10, size=num_rows).astype(np.int64)
            capacity = int(rng.integers(2, 25))
            got = replay_trace(trace.astype(np.int64), sizes, capacity)
            cache = RowCache(capacity)
            cache.access_trace(trace.astype(np.int64), sizes)
            assert stats_tuple(got) == stats_tuple(cache.stats)
