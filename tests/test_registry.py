"""Generic registry behaviour shared by accelerators and formats."""

from __future__ import annotations

import pytest

from repro.accelerator.registry import (
    ACCELERATORS,
    available_accelerators,
    get_accelerator,
    register_accelerator,
    temporary_accelerator,
    unregister_accelerator,
)
from repro.accelerator.sgcn import SGCNAccelerator
from repro.errors import ConfigurationError, FormatError
from repro.formats.dense import DenseFormat
from repro.formats.registry import (
    FORMATS,
    available_formats,
    get_format,
    register_format,
    temporary_format,
    unregister_format,
)
from repro.registry import Registry


def test_case_dash_space_folding_and_aliases():
    assert ACCELERATORS.canonical("AWB-GCN") == "awb_gcn"
    assert ACCELERATORS.canonical("i gcn") == "igcn"
    assert get_accelerator("I-GCN").name == "igcn"
    assert get_format("Dense").name == "dense"


def test_unknown_names_raise_family_error():
    with pytest.raises(ConfigurationError, match="unknown accelerator"):
        get_accelerator("tpu")
    with pytest.raises(FormatError, match="unknown format"):
        get_format("parquet")


def test_duplicate_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        register_accelerator("sgcn", SGCNAccelerator)
    with pytest.raises(FormatError, match="already registered"):
        register_format("dense", DenseFormat)


def test_register_unregister_round_trip_leaves_no_state():
    before = available_accelerators()
    register_accelerator("custom_model", SGCNAccelerator)
    assert "custom_model" in ACCELERATORS
    assert isinstance(get_accelerator("custom-model"), SGCNAccelerator)
    unregister_accelerator("custom_model")
    assert available_accelerators() == before
    with pytest.raises(ConfigurationError, match="cannot unregister"):
        unregister_accelerator("custom_model")

    before_formats = available_formats()
    register_format("custom_fmt", DenseFormat)
    unregister_format("custom_fmt")
    assert available_formats() == before_formats


def test_temporary_registration_is_scoped():
    assert "mock" not in ACCELERATORS
    with temporary_accelerator("mock", SGCNAccelerator):
        assert get_accelerator("mock").name == "sgcn"
    assert "mock" not in ACCELERATORS

    with temporary_format("mock_fmt", DenseFormat):
        assert get_format("mock_fmt").name == "dense"
    assert "mock_fmt" not in FORMATS


def test_temporary_shadows_and_restores_existing_entry():
    class FakeSGCN(SGCNAccelerator):
        display_name = "Fake"

    original = type(get_accelerator("sgcn"))
    with ACCELERATORS.temporary("sgcn", FakeSGCN):
        assert isinstance(get_accelerator("sgcn"), FakeSGCN)
    assert type(get_accelerator("sgcn")) is original


def test_temporary_restores_even_on_error():
    with pytest.raises(RuntimeError):
        with temporary_accelerator("doomed", SGCNAccelerator):
            raise RuntimeError("boom")
    assert "doomed" not in ACCELERATORS


def test_alias_cannot_hijack_existing_name():
    registry: Registry[int] = Registry("widget")
    registry.register("alpha", lambda: 1)
    with pytest.raises(ConfigurationError, match="alias 'alpha' is already"):
        registry.register("beta", lambda: 2, aliases=("alpha",))
    assert registry.get("alpha") == 1  # untouched
    # The failed call must not leave 'beta' half-registered.
    assert "beta" not in registry
    registry.register("beta", lambda: 2, aliases=("b",))
    assert registry.get("b") == 2


def test_name_cannot_collide_with_existing_alias():
    registry: Registry[int] = Registry("widget")
    registry.register("alpha", lambda: 1, aliases=("al",))
    with pytest.raises(ConfigurationError, match="'al' is already registered"):
        registry.register("al", lambda: 2)
    # The real entry is untouched and still reachable through the alias.
    assert registry.get("al") == 1
    registry.unregister("al")  # resolves through the alias to 'alpha'
    assert "alpha" not in registry


def test_temporary_shadows_through_alias():
    with ACCELERATORS.temporary("awb-gcn", SGCNAccelerator):
        assert get_accelerator("awbgcn").name == "sgcn"
        assert get_accelerator("awb_gcn").name == "sgcn"
    assert get_accelerator("awbgcn").name == "awb_gcn"  # restored


def test_unregister_removes_aliases():
    registry: Registry[int] = Registry("widget")
    registry.register("alpha", lambda: 1, aliases=("a", "al"))
    assert registry.get("AL") == 1
    registry.unregister("alpha")
    assert "a" not in registry
    assert registry.canonical("a") == "a"  # alias no longer redirects


def test_overwrite_alias_takeover_evicts_stranded_factory():
    registry: Registry[int] = Registry("widget")
    registry.register("x", lambda: 1)
    registry.register("y", lambda: 2, aliases=("x",), overwrite=True)
    assert registry.names() == ["y"]  # 'x' is an alias now, not a name
    assert registry.get("x") == 2


def test_generic_registry_error_class_is_configurable():
    registry: Registry[int] = Registry("thing", FormatError)
    with pytest.raises(FormatError, match="unknown thing 'x'"):
        registry.get("x")
