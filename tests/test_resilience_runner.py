"""Chaos suite: the sweep runner under injected faults, budgets, and resume."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import SweepRunner, run_scenario
from repro.experiments.spec import Scenario
from repro.experiments.store import ResultStore
from repro.resilience.checkpoint import SweepCheckpoint
from repro.resilience.faults import FaultPlan, FaultSpec, faults_scope
from repro.resilience.policy import ExecutionPolicy, RetryPolicy, TimeoutPolicy

TINY = dict(max_vertices=64, num_layers=4)

#: Retry quickly: chaos tests should not sleep their way through backoff.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0)


def _scenarios(count=3):
    datasets = ["cora", "citeseer", "pubmed"]
    return [
        Scenario(dataset=datasets[i % 3], accelerator="sgcn", seed=i, **TINY)
        for i in range(count)
    ]


def test_transient_fault_is_retried_to_success(tmp_path):
    scenario = _scenarios(1)[0]
    plan = FaultPlan([FaultSpec(site="worker:execute", times=2)])
    store = ResultStore(tmp_path / "cache")
    runner = SweepRunner(
        store=store, policy=ExecutionPolicy(retry=FAST_RETRY), faults=plan
    )
    report = runner.run([scenario])
    assert report.num_failed == 0
    assert report.num_retried == 1
    outcome = report.outcomes[0]
    assert outcome.ok and outcome.attempts == 3 and not outcome.degraded
    assert store.contains(scenario)
    # The retried result is the same result a clean run produces.
    assert outcome.result.summary() == run_scenario(scenario).summary()


def test_exhausted_retries_fail_with_the_injected_error():
    scenario = _scenarios(1)[0]
    plan = FaultPlan([FaultSpec(site="worker:execute", times=None)])
    runner = SweepRunner(policy=ExecutionPolicy(retry=FAST_RETRY), faults=plan)
    report = runner.run([scenario])
    assert report.num_failed == 1
    outcome = report.outcomes[0]
    assert outcome.error_type == "FaultInjectionError"
    assert outcome.attempts == FAST_RETRY.max_attempts


def test_permanent_fault_is_isolated_to_one_scenario(tmp_path):
    scenarios = _scenarios(3)
    plan = FaultPlan([FaultSpec(site="stage:schedule", times=1)])
    store = ResultStore(tmp_path / "cache")
    report = SweepRunner(store=store, faults=plan).run(scenarios)
    assert report.num_failed == 1
    assert report.failures[0].scenario.scenario_id == scenarios[0].scenario_id
    assert not store.contains(scenarios[0])
    assert store.contains(scenarios[1]) and store.contains(scenarios[2])


def test_measured_sparsity_degrades_to_synthetic(tmp_path):
    scenario = Scenario(dataset="cora", accelerator="sgcn", sparsity="measured", **TINY)
    plan = FaultPlan([FaultSpec(site="gcn:train", times=None)])
    store = ResultStore(tmp_path / "cache")
    report = SweepRunner(store=store, faults=plan).run([scenario])
    assert report.num_failed == 0
    assert report.num_degraded == 1
    outcome = report.outcomes[0]
    assert outcome.ok and outcome.degraded
    assert outcome.result.metadata["degraded"] is True
    assert "degraded_reason" in outcome.result.metadata
    # A fallback result must never be cached under the scenario's identity.
    assert not store.contains(scenario)
    # The degraded numbers are exactly the synthetic-sparsity numbers.
    synthetic = run_scenario(
        Scenario(dataset="cora", accelerator="sgcn", sparsity="synthetic", **TINY)
    )
    assert outcome.result.total_cycles == synthetic.total_cycles


def test_no_degrade_policy_turns_harvest_failure_into_a_failure():
    scenario = Scenario(dataset="cora", accelerator="sgcn", sparsity="measured", **TINY)
    plan = FaultPlan([FaultSpec(site="gcn:train", times=None)])
    runner = SweepRunner(policy=ExecutionPolicy(degrade=False), faults=plan)
    report = runner.run([scenario])
    assert report.num_failed == 1
    assert report.failures[0].error_type == "SparsityHarvestError"


def test_broken_store_degrades_to_uncached_execution(tmp_path):
    scenarios = _scenarios(2)
    store = ResultStore(tmp_path / "cache")
    plan = FaultPlan(
        [
            FaultSpec(site="store:get", times=None),
            FaultSpec(site="store:put", times=None),
        ]
    )
    runner = SweepRunner(store=store)
    # Arm around the whole sweep (cache probes happen before workers start).
    with faults_scope(plan):
        report = runner.run(scenarios)
    assert report.num_failed == 0
    assert report.num_simulated == 2
    assert len(store) == 0  # every put failed; nothing cached
    clean = SweepRunner(store=store).run(scenarios)
    assert [o.result.summary() for o in report.outcomes] == [
        o.result.summary() for o in clean.outcomes
    ]


def test_broken_store_is_fatal_under_no_degrade(tmp_path):
    scenario = _scenarios(1)[0]
    store = ResultStore(tmp_path / "cache")
    plan = FaultPlan([FaultSpec(site="store:get", times=None)])
    runner = SweepRunner(store=store, policy=ExecutionPolicy(degrade=False))
    with faults_scope(plan):
        with pytest.raises(Exception):
            runner.run([scenario])


def test_trace_cache_fault_falls_back_to_uncached_build():
    scenario = _scenarios(1)[0]
    plan = FaultPlan([FaultSpec(site="cache:trace", times=None)])
    report = SweepRunner(faults=plan).run([scenario])
    assert report.num_failed == 0
    assert report.outcomes[0].result.summary() == run_scenario(scenario).summary()


def test_cooperative_deadline_times_a_run_out():
    scenario = _scenarios(1)[0]
    plan = FaultPlan(
        [FaultSpec(site="stage:schedule", action="delay", delay_s=0.2, times=None)]
    )
    policy = ExecutionPolicy(timeout=TimeoutPolicy(run_timeout_s=0.05))
    report = SweepRunner(policy=policy, faults=plan).run([scenario])
    assert report.num_failed == 1
    assert report.num_timed_out == 1
    outcome = report.outcomes[0]
    assert outcome.timed_out and outcome.error_type == "RunTimeoutError"


def test_checkpoint_records_and_resume_skips(tmp_path):
    scenarios = _scenarios(3)
    checkpoint_path = tmp_path / "checkpoint.json"
    store = ResultStore(tmp_path / "cache")
    plan = FaultPlan([FaultSpec(site="stage:schedule", times=1)])
    first = SweepRunner(
        store=store,
        faults=plan,
        checkpoint_path=str(checkpoint_path),
        checkpoint_interval=1,
    ).run(scenarios)
    assert first.num_failed == 1

    document = SweepCheckpoint.load(checkpoint_path)
    assert document is not None
    assert len(document["completed"]) == 2
    assert len(document["failures"]) == 1
    failed_id = next(iter(document["failures"]))
    assert failed_id == scenarios[0].scenario_id

    second = SweepRunner(
        store=store, checkpoint_path=str(checkpoint_path), resume=True
    ).run(scenarios)
    assert second.num_failed == 0
    assert second.num_cached == 2  # completed work answered by the store
    assert second.num_simulated == 1  # only the failed scenario re-ran
    resumed = SweepCheckpoint.load(checkpoint_path)
    assert len(resumed["completed"]) == 3
    assert resumed["failures"] == {}


def test_checkpointed_pool_sweep_matches_serial(tmp_path):
    scenarios = _scenarios(4)
    serial = SweepRunner(workers=1).run(scenarios)
    pooled = SweepRunner(
        workers=2,
        checkpoint_path=str(tmp_path / "checkpoint.json"),
    ).run(scenarios)
    assert pooled.num_failed == 0
    assert [o.result.summary() for o in serial.outcomes] == [
        o.result.summary() for o in pooled.outcomes
    ]
    document = SweepCheckpoint.load(tmp_path / "checkpoint.json")
    assert len(document["completed"]) == 4


def test_pool_path_applies_policy_and_faults(tmp_path):
    scenarios = _scenarios(2)
    plan = FaultPlan([FaultSpec(site="worker:execute", times=1)])
    store = ResultStore(tmp_path / "cache")
    report = SweepRunner(
        store=store,
        workers=2,
        policy=ExecutionPolicy(retry=FAST_RETRY),
        faults=plan,
    ).run(scenarios)
    assert report.num_failed == 0
    # Each worker process arms its own plan copy; at least one run retried.
    assert report.num_retried >= 1


def test_report_metrics_document_carries_resilience_counters(tmp_path):
    scenarios = _scenarios(2)
    plan = FaultPlan([FaultSpec(site="worker:execute", times=1)])
    store = ResultStore(tmp_path / "cache")
    report = SweepRunner(
        store=store, policy=ExecutionPolicy(retry=FAST_RETRY), faults=plan
    ).run(scenarios)
    document = report.metrics_document(pack="chaos")
    assert document["retried"] == 1
    assert document["degraded"] == 0
    assert document["timed_out"] == 0
    assert document["caches"]["store"]["puts"] == 2


def test_runner_rejects_bad_resilience_parameters():
    with pytest.raises(ConfigurationError):
        SweepRunner(checkpoint_interval=0)
    with pytest.raises(ConfigurationError):
        SweepRunner(worker_grace_s=-1)
