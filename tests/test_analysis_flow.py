"""The interprocedural flow layer: golden map, chaos self-test, mutation gate.

Three layers of defence for the F-rules:

* the *golden map* pins the derived stage→attribute read-sets over ``src``,
  so any new knob read must consciously update an identity, the ledger, or
  the golden file;
* the *chaos tests* generate randomized synthetic modules with known
  read/call structure and assert the propagation matches an independently
  computed closure, and that F1/F2 flag exactly the planted leaks;
* the *mutation test* copies the real pipeline into a scratch tree, plants
  an un-keyed knob read in the ``schedule`` stage, and proves the lint gate
  goes red (and is clean on the unmutated copy).
"""

from __future__ import annotations

import json
import random
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import get_rules, run_lint
from repro.analysis.audit import audit_document, run_audit
from repro.analysis.engine import load_project
from repro.analysis.rules.identity import project_flow

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
GOLDEN = Path(__file__).resolve().parent / "golden_identity_flow.json"

#: The real modules the mutation test copies (a closed F1/F2 slice of src).
PIPELINE_SLICE = (
    "repro/core/config.py",
    "repro/core/runspec.py",
    "repro/core/session.py",
    "repro/accelerator/design.py",
    "repro/accelerator/pipeline.py",
)


# --------------------------------------------------------------------------- #
# Golden stage→attribute map
# --------------------------------------------------------------------------- #
def test_derived_read_map_matches_golden():
    golden = json.loads(GOLDEN.read_text())
    doc = audit_document(run_audit([SRC]))
    assert doc["stage_reads"] == golden["stage_reads"], (
        "the derived stage→attribute map changed; if the new read is "
        "intentional, update an identity (or the exemption ledger) and "
        "regenerate tests/golden_identity_flow.json"
    )
    assert doc["coverage"] == golden["coverage"]
    assert doc["replay_knobs"] == golden["replay_knobs"]
    assert doc["supported_overrides"] == golden["supported_overrides"]
    derived = [
        {"key": row["key"], "declared": row["declared"], "derived": row["derived"]}
        for row in doc["partition"]
    ]
    assert derived == golden["partition"]
    assert doc["ok"] is True


def test_src_audit_has_no_missing_coverage():
    report = run_audit([SRC])
    assert report.ok
    for row in report.coverage:
        assert not row.missing, (row.class_name, row.missing)
    for entry in report.exemptions:
        assert entry.reason, (entry.path, entry.line, entry.subject)


# --------------------------------------------------------------------------- #
# Chaos: randomized synthetic modules
# --------------------------------------------------------------------------- #
FIELDS = ("alpha", "beta", "gamma", "delta", "epsilon")


def _synth_f1_module(rng: random.Random) -> tuple[str, set[str], set[str]]:
    """A random call DAG over RunSpec readers.

    Returns (source, expected transitive read-set of the stage, planted
    leaks = reads outside key()'s coverage).
    """
    n = rng.randint(4, 7)
    reads = {i: sorted(rng.sample(FIELDS, rng.randint(0, 3))) for i in range(n)}
    calls = {}
    for i in range(n):
        later = list(range(i + 1, n))
        calls[i] = sorted(rng.sample(later, min(len(later), rng.randint(0, 2))))
    if n > 1 and rng.random() < 0.5:
        calls[n - 1] = [0]  # cycle back to the root: convergence must hold
    covered = set(rng.sample(FIELDS, rng.randint(1, len(FIELDS))))

    lines = [
        "from dataclasses import dataclass",
        "from typing import Dict",
        "",
        "",
        "@dataclass(frozen=True)",
        "class RunSpec:",
    ]
    for name in FIELDS:
        lines.append(f"    {name}: int")
    lines.append("")
    lines.append("    def key(self) -> Dict[str, object]:")
    lines.append(
        "        return {"
        + ", ".join(f'"{name}": self.{name}' for name in sorted(covered))
        + "}"
    )
    for i in range(n):
        name = "schedule" if i == 0 else f"helper_{i}"
        lines.append("")
        lines.append("")
        lines.append(f"def {name}(spec: RunSpec) -> int:")
        lines.append("    total = 0")
        for attr in reads[i]:
            lines.append(f"    total += spec.{attr}")
        for j in calls[i]:
            callee = "schedule" if j == 0 else f"helper_{j}"
            lines.append(f"    total += {callee}(spec)")
        lines.append("    return total")

    # Independent closure: BFS over the generated spec, not the analyzer.
    seen, stack = set(), [0]
    while stack:
        i = stack.pop()
        if i in seen:
            continue
        seen.add(i)
        stack.extend(calls[i])
    expected = {attr for i in seen for attr in reads[i]}
    return "\n".join(lines) + "\n", expected, expected - covered


@pytest.mark.parametrize("seed", range(12))
def test_chaos_propagation_and_f1_flags_planted_leaks(tmp_path, seed):
    rng = random.Random(seed)
    source, expected, leaks = _synth_f1_module(rng)
    target = tmp_path / f"chaos_f1_{seed}.py"
    target.write_text(source)

    modules, parse_findings = load_project([target])
    assert not parse_findings, source
    flow = project_flow(modules)
    roots = flow.stage_roots()
    assert roots, source
    derived = {
        attr for (_, attr) in flow.reads_from(roots) if attr in FIELDS
    }
    assert derived == expected, source

    report = run_lint([target], get_rules(["F1"]))
    flagged = {finding.message.split(" ", 1)[0] for finding in report.findings}
    assert flagged == {f"RunSpec.{attr}" for attr in leaks}, source


def _synth_f2_module(rng: random.Random) -> tuple[str, int]:
    """A random override surface + partition.  Returns (source, expected
    F2 finding count): one per schedule-side read of a replay-classed knob,
    plus one per replay-only key missing from the class."""
    fields = list(FIELDS)
    sched_reads = set(rng.sample(fields, rng.randint(0, 3)))
    replay_reads = set(rng.sample(fields, rng.randint(0, 3)))
    knobs = set(rng.sample(fields, rng.randint(0, len(fields))))

    misclassed = sched_reads & knobs
    unclassified = {
        key
        for key in set(fields) - knobs
        if key in replay_reads and key not in sched_reads
    }

    lines = [
        "from dataclasses import dataclass, replace",
        "from typing import Mapping",
        "",
        f"SUPPORTED_OVERRIDES = {tuple(sorted(fields))!r}",
        "",
        f"REPLAY_KNOB_OVERRIDES = frozenset({tuple(sorted(knobs))!r})",
        "",
        "",
        "@dataclass(frozen=True)",
        "class CacheConfig:",
    ]
    for name in fields:
        lines.append(f"    {name}: int")
    lines += [
        "",
        "",
        "def build_config(overrides: Mapping[str, object]) -> CacheConfig:",
        "    cache = CacheConfig("
        + ", ".join(f"{name}=1" for name in fields)
        + ")",
    ]
    for name in fields:
        lines.append(f'    if "{name}" in overrides:')
        lines.append(
            f"        cache = replace(cache, {name}=int(overrides[\"{name}\"]))"
            "  # type: ignore[call-overload]"
        )
    lines.append("    return cache")
    for stage, attrs in (("build_context", sched_reads), ("replay", replay_reads)):
        lines += ["", "", f"def {stage}(config: CacheConfig) -> int:", "    total = 0"]
        for attr in sorted(attrs):
            lines.append(f"    total += config.{attr}")
        lines.append("    return total")
    return "\n".join(lines) + "\n", len(misclassed) + len(unclassified)


@pytest.mark.parametrize("seed", range(12))
def test_chaos_f2_flags_exactly_the_planted_partition_errors(tmp_path, seed):
    rng = random.Random(1000 + seed)
    source, expected_count = _synth_f2_module(rng)
    target = tmp_path / f"chaos_f2_{seed}.py"
    target.write_text(source)
    report = run_lint([target], get_rules(["F2"]))
    assert len(report.findings) == expected_count, source
    assert all(finding.rule == "F2" for finding in report.findings)


# --------------------------------------------------------------------------- #
# Mutation: the gate goes red when a stage grows an un-keyed knob read
# --------------------------------------------------------------------------- #
MUTATION = textwrap.dedent(
    '''

    def schedule(context: RunContext) -> RunContext:
        """Mutated stage: reads knobs outside their declared class."""
        _ = context.config.cache.replacement
        _ = context.config.engines.frequency_ghz
        return context
    '''
)


def _copy_slice(tmp_path: Path) -> Path:
    scratch = tmp_path / "pipeline_copy"
    scratch.mkdir()
    for relative in PIPELINE_SLICE:
        shutil.copy(SRC / relative, scratch / Path(relative).name)
    return scratch


def test_unmutated_pipeline_slice_is_clean(tmp_path):
    scratch = _copy_slice(tmp_path)
    report = run_lint([scratch], get_rules(["F1", "F2"]))
    assert report.ok, [finding.location() for finding in report.findings]


def test_mutated_schedule_read_turns_f1_and_f2_red(tmp_path):
    scratch = _copy_slice(tmp_path)
    pipeline = scratch / "pipeline.py"
    pipeline.write_text(pipeline.read_text() + MUTATION)
    report = run_lint([scratch], get_rules(["F1", "F2"]))
    assert not report.ok
    rules = {finding.rule for finding in report.findings}
    assert "F1" in rules  # CacheConfig.replacement is outside the identity
    assert "F2" in rules  # frequency_ghz is replay-classed but schedule-read
    messages = " ".join(finding.message for finding in report.findings)
    assert "CacheConfig.replacement" in messages
    assert "frequency_ghz" in messages
