"""End-to-end tests of ``repro lint``: the shipped tree is clean, bad code
fails, and the JSON/quiet/list-rules surfaces behave like the other commands."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import LINT_DOCUMENT_KIND, LINT_SCHEMA_VERSION
from repro.analysis.rules import RULE_IDS
from repro.experiments.cli import main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "analysis_fixtures"


def test_lint_src_ships_clean(capsys):
    assert main(["lint", str(REPO / "src")]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_lint_flags_bad_fixture_and_exits_nonzero(capsys):
    assert main(["lint", str(FIXTURES / "n2_flag.py")]) == 1
    out = capsys.readouterr().out
    assert "N2" in out
    assert "[print-outside-writer]" in out


def test_lint_json_document(capsys):
    assert main(["lint", "--json", str(FIXTURES / "s2_flag.py")]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["schema_version"] == LINT_SCHEMA_VERSION
    assert document["kind"] == LINT_DOCUMENT_KIND
    assert document["ok"] is False
    assert document["files_checked"] == 1
    assert [rule["id"] for rule in document["rules"]] == list(RULE_IDS)
    # Two findings: the bare except and the swallowed BaseException.
    assert document["counts"]["S2"] == 2
    assert len(document["findings"]) == 2
    for finding in document["findings"]:
        assert finding["rule"] == "S2"
        assert finding["path"].endswith("s2_flag.py")


def test_lint_rule_selection(capsys):
    # d1_flag violates only D1; selecting another rule finds nothing.
    assert main(["lint", "--rule", "N1", str(FIXTURES / "d1_flag.py")]) == 0
    assert main(["lint", "--rule", "D1", str(FIXTURES / "d1_flag.py")]) == 1
    capsys.readouterr()


def test_lint_unknown_rule_is_a_usage_error(capsys):
    assert main(["lint", "--rule", "bogus", str(FIXTURES)]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_lint_missing_target_is_a_usage_error(capsys):
    assert main(["lint", str(FIXTURES / "no_such_dir")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_lint_quiet_keeps_findings_drops_summary(capsys):
    assert main(["--quiet", "lint", str(FIXTURES / "n2_flag.py")]) == 1
    out = capsys.readouterr().out
    assert "print-outside-writer" in out
    assert "checked" not in out
    # A clean quiet run prints nothing at all.
    assert main(["--quiet", "lint", str(FIXTURES / "s1_pass.py")]) == 0
    assert capsys.readouterr().out == ""


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out
    assert "unseeded-rng" in out


def test_audit_src_ships_clean(capsys):
    assert main(["audit", str(REPO / "src")]) == 0
    out = capsys.readouterr().out
    assert "stage read map" in out
    assert "exemption ledger" in out
    assert "audit clean" in out


def test_audit_json_document(capsys):
    assert main(["audit", "--json", str(REPO / "src")]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema_version"] == LINT_SCHEMA_VERSION
    assert document["kind"] == "identity-audit"
    assert document["ok"] is True
    assert set(document["stage_reads"]) == {
        "build_context",
        "schedule",
        "replay",
        "timing",
        "energy",
    }
    assert document["replay_knobs"]
    assert all(entry["reason"] for entry in document["exemptions"])


def test_audit_flags_leaky_fixture_and_exits_nonzero(capsys):
    assert main(["audit", str(FIXTURES / "f1_flag.py")]) == 1
    out = capsys.readouterr().out
    assert "RunSpec.tag" in out
    assert "missing : tag <-- NOT COVERED" in out
