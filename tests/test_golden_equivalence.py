"""Golden equivalence: vectorized engine vs the legacy (pre-PR) path.

The acceptance bar of the trace-engine PR: for every built-in dataset x
accelerator x variant, the vectorized replay must produce bit-identical
``RowCacheStats`` and byte-identical ``SimulationResult`` documents versus
the legacy ``RowCache.access`` path (which also uses the loop-based trace
builders, making this a whole-pipeline equivalence check).
"""

import json

import numpy as np
import pytest

from repro.accelerator.registry import ACCELERATORS
from repro.accelerator.simulator import (
    GCN_VARIANTS,
    build_workloads,
    get_replay_backend,
    set_replay_backend,
)
from repro.core.config import SystemConfig
from repro.core.runspec import RunSpec
from repro.core.session import Session
from repro.graphs.datasets import FIGURE_ORDER
from repro.memory.replay import ReplayEngine
from repro.memory.rowcache import RowCache

#: Scale cap keeping the full grid fast while still exercising tiling,
#: engine interleaving, pinned partitions, and every feature format.
GOLDEN_MAX_VERTICES = 96

ALL_ACCELERATORS = tuple(sorted(ACCELERATORS.names()))


@pytest.fixture(autouse=True)
def restore_backend():
    previous = get_replay_backend()
    yield
    set_replay_backend(previous)


def run_grid(dataset_name, variant):
    """One result document per accelerator for the active backend."""
    session = Session()
    documents = {}
    for accelerator in ALL_ACCELERATORS:
        spec = RunSpec(
            dataset=dataset_name,
            accelerator=accelerator,
            variant=variant,
            max_vertices=GOLDEN_MAX_VERTICES,
        )
        documents[accelerator] = json.dumps(
            session.run(spec).to_dict(), sort_keys=True
        )
    return documents


@pytest.mark.parametrize("variant", GCN_VARIANTS)
@pytest.mark.parametrize("dataset_name", FIGURE_ORDER)
def test_simulation_results_byte_identical(dataset_name, variant):
    set_replay_backend("vectorized")
    vectorized = run_grid(dataset_name, variant)
    set_replay_backend("legacy")
    legacy = run_grid(dataset_name, variant)
    for accelerator in ALL_ACCELERATORS:
        assert vectorized[accelerator] == legacy[accelerator], (
            dataset_name,
            accelerator,
            variant,
        )


@pytest.mark.parametrize("accelerator", ["gcnax", "hygcn", "engn", "igcn", "sgcn"])
def test_rowcache_stats_bit_identical_on_real_traces(accelerator):
    """The per-trace statistics themselves (not just the end results) agree."""
    session = Session()
    dataset = session.load_dataset("pubmed", max_vertices=192)
    model = ACCELERATORS.factory(accelerator)()
    context = model._build_context(
        dataset, SystemConfig(), build_workloads(dataset)
    )
    if context.trace.size == 0:
        pytest.skip("column-product design replays no trace")
    rng = np.random.default_rng(0)
    engine = ReplayEngine(context.trace)
    for _ in range(3):
        sizes = rng.integers(1, 9, size=dataset.graph.num_vertices).astype(np.int64)
        capacity = int(rng.integers(8, context.cache_lines + 1))
        got = engine.replay(sizes, capacity)
        cache = RowCache(capacity)
        want = cache.access_trace(context.trace, sizes)
        assert (got.accesses, got.hits, got.hit_lines, got.miss_lines) == (
            want.accesses,
            want.hits,
            want.hit_lines,
            want.miss_lines,
        )
        assert got.misses == want.misses
