"""Execution policies: retry/backoff determinism, deadlines, wire round-trip."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, RunTimeoutError, SimulationError
from repro.resilience.policy import (
    ExecutionPolicy,
    RetryPolicy,
    TimeoutPolicy,
    active_policy,
    check_deadline,
    deadline_scope,
    policy_scope,
)


def test_retry_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_base_s=-1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ConfigurationError):
        TimeoutPolicy(run_timeout_s=0)


def test_should_retry_bounds_attempts_and_filters_types():
    policy = RetryPolicy(max_attempts=3)
    transient = SimulationError("flaky")
    assert policy.should_retry(transient, 1)
    assert policy.should_retry(transient, 2)
    assert not policy.should_retry(transient, 3)
    # Configuration problems are permanent: never retried by default.
    assert not policy.should_retry(ConfigurationError("bad scenario"), 1)
    # Interrupts always propagate.
    assert not policy.should_retry(KeyboardInterrupt(), 1)


def test_retryable_allowlist_matches_the_mro():
    policy = RetryPolicy(max_attempts=5, retryable=("OSError",))
    assert policy.should_retry(ConnectionResetError(), 1)  # subclass of OSError
    assert not policy.should_retry(ValueError(), 1)


def test_backoff_grows_clamps_and_reproduces():
    policy = RetryPolicy(
        max_attempts=9,
        backoff_base_s=0.1,
        backoff_factor=2.0,
        max_backoff_s=0.5,
        jitter=0.0,
    )
    assert policy.backoff_s(1) == pytest.approx(0.1)
    assert policy.backoff_s(2) == pytest.approx(0.2)
    assert policy.backoff_s(3) == pytest.approx(0.4)
    assert policy.backoff_s(4) == pytest.approx(0.5)  # clamped

    jittered = RetryPolicy(max_attempts=9, jitter=0.5, seed=7)
    first = [jittered.backoff_s(attempt, "scenario-a") for attempt in (1, 2, 3)]
    again = [jittered.backoff_s(attempt, "scenario-a") for attempt in (1, 2, 3)]
    other = [jittered.backoff_s(attempt, "scenario-b") for attempt in (1, 2, 3)]
    assert first == again  # deterministic for the same key
    assert first != other  # decorrelated across keys
    assert all(sleep <= jittered.max_backoff_s for sleep in first + other)


def test_policies_round_trip_through_dicts():
    policy = ExecutionPolicy(
        retry=RetryPolicy(max_attempts=4, retryable=("OSError", "SimulationError")),
        timeout=TimeoutPolicy(run_timeout_s=12.5, grace_s=2.0),
        degrade=False,
    )
    clone = ExecutionPolicy.from_dict(policy.to_dict())
    assert clone == policy
    assert clone.max_attempts == 4
    assert clone.run_timeout_s == 12.5
    assert clone.timeout.reclaim_timeout_s == pytest.approx(14.5)

    bare = ExecutionPolicy.from_dict(ExecutionPolicy().to_dict())
    assert bare.retry is None and bare.timeout is None and bare.degrade


def test_policy_scope_exposes_and_restores():
    assert active_policy() is None
    policy = ExecutionPolicy(degrade=False)
    with policy_scope(policy):
        assert active_policy() is policy
    assert active_policy() is None


def test_deadline_scope_enforces_cooperatively():
    check_deadline("anywhere")  # no deadline armed: no-op
    with deadline_scope(None):
        check_deadline("unbounded")
    with deadline_scope(60.0):
        check_deadline("plenty of budget")
    with deadline_scope(0.0):
        with pytest.raises(RunTimeoutError) as excinfo:
            check_deadline("replay")
    assert "replay" in str(excinfo.value)
    check_deadline("after the scope")  # disarmed again
