"""Tests for sweep-spec expansion and scenario identity."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.scenarios import available_packs, get_pack
from repro.experiments.spec import Scenario, SweepSpec, build_config


def test_expand_is_cartesian_product():
    spec = SweepSpec(
        name="grid",
        datasets=["cora", "pubmed"],
        accelerators=["sgcn", "gcnax"],
        variants=["gcn", "gin"],
        seeds=[0, 1],
        depths=[4, 8],
        override_grid=[{}, {"num_engines": 4}],
        max_vertices=64,
    )
    scenarios = spec.expand()
    assert len(scenarios) == spec.num_scenarios == 2 * 2 * 2 * 2 * 2 * 2
    combos = {
        (s.dataset, s.accelerator, s.variant, s.seed, s.num_layers,
         tuple(sorted(s.overrides.items())))
        for s in scenarios
    }
    assert len(combos) == len(scenarios)
    assert ("pubmed", "gcnax", "gin", 1, 8, (("num_engines", 4),)) in combos


def test_expand_rejects_unknown_axis_values():
    for kwargs in (
        {"datasets": ["atlantis"], "accelerators": ["sgcn"]},
        {"datasets": ["cora"], "accelerators": ["tpu"]},
        {"datasets": ["cora"], "accelerators": ["sgcn"], "variants": ["gat"]},
        {"datasets": ["cora"], "accelerators": ["sgcn"],
         "override_grid": [{"warp_drive": 1}]},
    ):
        spec = SweepSpec(name="bad", max_vertices=64, **kwargs)
        with pytest.raises(ConfigurationError):
            spec.expand()


def test_empty_axis_rejected_at_construction():
    with pytest.raises(ConfigurationError):
        SweepSpec(name="bad", datasets=[], accelerators=["sgcn"])
    with pytest.raises(ConfigurationError):
        SweepSpec(name="bad", datasets=["cora"], accelerators=["sgcn"],
                  override_grid=[])
    with pytest.raises(ConfigurationError):
        SweepSpec(name="bad", datasets=["cora"], accelerators=["sgcn"],
                  override_grid=[{}, {}],  # duplicate grid points
                  ).expand()


def test_override_tags_length_checked():
    with pytest.raises(ConfigurationError):
        SweepSpec(
            name="bad",
            datasets=["cora"],
            accelerators=["sgcn"],
            override_grid=[{}, {"num_engines": 4}],
            override_tags=["only-one"],
        )


def test_scenario_id_deterministic_and_tag_independent():
    a = Scenario(dataset="cora", accelerator="sgcn", overrides={"num_engines": 4})
    b = Scenario(dataset="CORA", accelerator="SGCN", overrides={"num_engines": 4},
                 tag="label")
    c = Scenario(dataset="cora", accelerator="sgcn", overrides={"num_engines": 8})
    assert a.scenario_id == b.scenario_id
    assert a.scenario_id != c.scenario_id


def test_scenario_is_hashable():
    a = Scenario(dataset="cora", accelerator="sgcn", overrides={"num_engines": 4})
    b = Scenario(dataset="cora", accelerator="sgcn", overrides={"num_engines": 4})
    c = Scenario(dataset="cora", accelerator="gcnax")
    assert hash(a) == hash(b)
    assert a == b
    assert {a, b, c} == {a, c}


def test_accelerator_aliases_share_identity():
    canonical = Scenario(dataset="cora", accelerator="igcn")
    alias = Scenario(dataset="cora", accelerator="i-gcn")
    assert alias.accelerator == "igcn"
    assert alias.scenario_id == canonical.scenario_id
    assert (
        Scenario(dataset="cora", accelerator="awbgcn").accelerator == "awb_gcn"
    )


def test_scenario_round_trip():
    scenario = Scenario(
        dataset="pubmed", accelerator="awb-gcn", variant="sage", seed=3,
        max_vertices=256, num_layers=12,
        overrides={"cache_capacity_bytes": 262144, "dram": "hbm1"}, tag="x",
    )
    rebuilt = Scenario.from_dict(scenario.to_dict())
    assert rebuilt == scenario
    assert rebuilt.scenario_id == scenario.scenario_id
    assert rebuilt.accelerator == "awb_gcn"


def test_sweep_spec_round_trip():
    spec = get_pack("cache-size", max_vertices=128)
    rebuilt = SweepSpec.from_dict(spec.to_dict())
    assert [s.scenario_id for s in rebuilt.expand()] == [
        s.scenario_id for s in spec.expand()
    ]


def test_build_config_applies_overrides():
    config = build_config(
        {
            "cache_capacity_bytes": 256 * 1024,
            "num_engines": 4,
            "dram": "hbm1",
            "frequency_ghz": 2.0,
            "pipeline_phases": False,
        }
    )
    assert config.cache.capacity_bytes == 256 * 1024
    assert config.engines.num_aggregation_engines == 4
    assert config.engines.num_combination_engines == 4
    assert config.dram.name == "HBM1"
    assert config.engines.frequency_ghz == 2.0
    assert config.pipeline_phases is False


def test_build_config_rejects_illegal_values():
    with pytest.raises(ConfigurationError):
        build_config({"cache_capacity_bytes": 1000})  # not ways*line aligned
    with pytest.raises(ConfigurationError):
        build_config({"dram": "ddr3"})


def test_builtin_packs_expand_and_validate():
    for name in available_packs():
        spec = get_pack(name, max_vertices=64)
        scenarios = spec.expand()
        assert scenarios, name
        assert len({s.scenario_id for s in scenarios}) == len(scenarios)
