"""Unit tests of the vectorized trace-replay engine (repro.memory.replay)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.memory.replay import (
    ReplayEngine,
    TraceCache,
    array_token,
    replay_accesses,
    replay_trace,
)
from repro.memory.rowcache import RowCache, RowCacheStats


def stats_tuple(stats: RowCacheStats):
    return (stats.accesses, stats.hits, stats.misses, stats.hit_lines, stats.miss_lines)


def reference_stats(trace, sizes, capacity):
    cache = RowCache(capacity)
    cache.access_trace(trace, sizes)
    return cache.stats


class TestReplayEquivalence:
    def test_randomized_traces_match_rowcache(self):
        rng = np.random.default_rng(0)
        for trial in range(150):
            num_rows = int(rng.integers(1, 50))
            length = int(rng.integers(0, 500))
            trace = rng.integers(0, num_rows, size=length).astype(np.int64)
            sizes = rng.integers(1, 14, size=num_rows).astype(np.int64)
            if trial % 3 == 0:
                # A row larger than the whole cache streams through.
                sizes[int(rng.integers(0, num_rows))] = 10_000
            capacity = int(rng.integers(1, 80))
            got = replay_trace(trace, sizes, capacity)
            want = reference_stats(trace, sizes, capacity)
            assert stats_tuple(got) == stats_tuple(want)

    def test_empty_trace(self):
        stats = replay_trace(np.zeros(0, dtype=np.int64), np.asarray([4]), 16)
        assert stats_tuple(stats) == (0, 0, 0, 0, 0)

    def test_single_access_misses(self):
        stats = replay_trace(np.asarray([3]), np.asarray([1, 1, 1, 5]), 16)
        assert stats_tuple(stats) == (1, 0, 1, 0, 5)

    def test_all_hits_when_everything_fits(self):
        trace = np.asarray([0, 1, 2, 0, 1, 2], dtype=np.int64)
        sizes = np.asarray([2, 2, 2], dtype=np.int64)
        stats = replay_trace(trace, sizes, 64)
        assert stats.hits == 3
        assert stats.hit_lines == 6
        assert stats.miss_lines == 6

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            replay_trace(np.asarray([0]), np.asarray([1]), 0)

    def test_zero_capacity_equivalent_thrashing(self):
        # Working set exceeds the cache: every access misses, like RowCache.
        trace = np.tile(np.arange(8, dtype=np.int64), 10)
        sizes = np.full(8, 4, dtype=np.int64)
        got = replay_trace(trace, sizes, 8)
        want = reference_stats(trace, sizes, 8)
        assert stats_tuple(got) == stats_tuple(want)
        assert got.hits == 0


class TestReplayManyAndMemo:
    def test_replay_many_matches_individual_replays(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 64, size=800).astype(np.int64)
        engine = ReplayEngine(trace)
        tables = [rng.integers(1, 9, size=64).astype(np.int64) for _ in range(4)]
        batched = engine.replay_many(tables, 100)
        for table, got in zip(tables, batched):
            assert stats_tuple(got) == stats_tuple(
                reference_stats(trace, table, 100)
            )

    def test_memo_hits_for_repeated_tables(self):
        rng = np.random.default_rng(2)
        trace = rng.integers(0, 32, size=400).astype(np.int64)
        engine = ReplayEngine(trace)
        table = rng.integers(1, 6, size=32).astype(np.int64)
        first = engine.replay(table, 50)
        again = engine.replay(table.copy(), 50)
        assert engine.memo_hits == 1
        assert stats_tuple(first) == stats_tuple(again)
        # A different capacity is a different memo entry.
        engine.replay(table, 51)
        assert engine.memo_hits == 1

    def test_pinned_rows_always_hit(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 40, size=1000).astype(np.int64)
        sizes = rng.integers(1, 8, size=40).astype(np.int64)
        pinned = np.asarray([1, 5, 17], dtype=np.int64)
        capacity = 30
        engine = ReplayEngine(trace, pinned=pinned)
        got = engine.replay(sizes, capacity)

        # Reference: the simulator's historical inline loop.
        cache = RowCache(capacity)
        pinned_set = set(pinned.tolist())
        accesses = hits = hit_lines = miss_lines = 0
        size_list = sizes.tolist()
        for row in trace.tolist():
            size = size_list[row]
            accesses += 1
            if row in pinned_set:
                hits += 1
                hit_lines += size
            elif cache.access(row, size):
                hits += 1
                hit_lines += size
            else:
                miss_lines += size
        assert stats_tuple(got) == (
            accesses,
            hits,
            accesses - hits,
            hit_lines,
            miss_lines,
        )


class TestReplayAccesses:
    def test_constant_per_row_sizes_use_fast_path(self):
        rng = np.random.default_rng(4)
        rows = rng.integers(0, 20, size=300).astype(np.int64)
        table = rng.integers(1, 7, size=20).astype(np.int64)
        per_access = table[rows]
        got = replay_accesses(rows, per_access, 40)
        assert stats_tuple(got) == stats_tuple(reference_stats(rows, table, 40))

    def test_varying_sizes_fall_back_to_reference(self):
        # Re-access with a larger size exercises resize-on-reaccess, which
        # only the reference implementation models; the fallback must match.
        rows = np.asarray([0, 1, 0, 0], dtype=np.int64)
        sizes = np.asarray([4, 2, 6, 6], dtype=np.int64)
        got = replay_accesses(rows, sizes, 16)
        cache = RowCache(16)
        for row, size in zip(rows.tolist(), sizes.tolist()):
            cache.access(row, size)
        assert stats_tuple(got) == stats_tuple(cache.stats)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            replay_accesses(np.asarray([0, 1]), np.asarray([1]), 8)


class TestTraceCache:
    def test_get_builds_once_and_counts(self):
        cache = TraceCache(max_entries=4)
        calls = []
        value = cache.get("k", lambda: calls.append(1) or "v")
        assert value == "v" and cache.misses == 1
        assert cache.get("k", lambda: calls.append(1) or "other") == "v"
        assert cache.hits == 1
        assert len(calls) == 1

    def test_lru_eviction(self):
        cache = TraceCache(max_entries=2)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        cache.get("a", lambda: 0)  # refresh a
        cache.get("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_clear_keeps_counters(self):
        cache = TraceCache()
        cache.get("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            TraceCache(max_entries=0)

    def test_array_token_distinguishes_contents(self):
        a = np.asarray([1, 2, 3], dtype=np.int64)
        assert array_token(a) == array_token(a.copy())
        assert array_token(a) != array_token(a.astype(np.int32))
        assert array_token(a) != array_token(a[::-1])
