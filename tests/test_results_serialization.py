"""Round-trip fidelity of the result-container serialisation."""

from __future__ import annotations

import json

import pytest

from repro.core.api import compare_accelerators
from repro.core.results import (
    ComparisonResult,
    SimulationResult,
    TrafficBreakdown,
)
from repro.graphs.datasets import load_dataset
from repro.memory.energy import EnergyBreakdown


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_dataset("cora", max_vertices=64, num_layers=4)


def test_traffic_breakdown_round_trip():
    traffic = TrafficBreakdown(
        topology_bytes=1.5, feature_read_bytes=2.5, feature_write_bytes=3.5,
        weight_bytes=4.5, psum_bytes=5.5,
    )
    rebuilt = TrafficBreakdown.from_dict(traffic.to_dict())
    assert rebuilt == traffic
    assert rebuilt.total_bytes == traffic.total_bytes


def test_energy_breakdown_round_trip():
    energy = EnergyBreakdown(compute_joules=1.0, cache_joules=2.0, dram_joules=3.0)
    rebuilt = EnergyBreakdown.from_dict(energy.to_dict())
    assert rebuilt == energy


def test_simulation_result_round_trip_through_json(tiny_dataset):
    from repro.core.api import simulate

    result = simulate(tiny_dataset, "sgcn")
    payload = json.dumps(result.to_dict())  # must be JSON-encodable
    rebuilt = SimulationResult.from_dict(json.loads(payload))

    assert rebuilt.accelerator == result.accelerator
    assert rebuilt.dataset == result.dataset
    assert len(rebuilt.layers) == len(result.layers)
    assert rebuilt.total_cycles == pytest.approx(result.total_cycles)
    assert rebuilt.dram_traffic_bytes == pytest.approx(result.dram_traffic_bytes)
    assert rebuilt.total_macs == pytest.approx(result.total_macs)
    assert rebuilt.energy.total_joules == pytest.approx(result.energy.total_joules)
    assert rebuilt.average_cache_hit_rate == pytest.approx(
        result.average_cache_hit_rate
    )
    for original, copy in zip(result.layers, rebuilt.layers):
        assert copy.to_dict() == original.to_dict()


def test_comparison_result_round_trip(tiny_dataset):
    comparison = compare_accelerators(tiny_dataset, ["gcnax", "sgcn"])
    rebuilt = ComparisonResult.from_dict(
        json.loads(json.dumps(comparison.to_dict()))
    )
    assert rebuilt.dataset == comparison.dataset
    assert rebuilt.baseline == comparison.baseline
    assert rebuilt.accelerators() == comparison.accelerators()
    assert rebuilt.speedups() == pytest.approx(comparison.speedups())
    assert rebuilt.normalized_traffic() == pytest.approx(
        comparison.normalized_traffic()
    )
