"""DesignPoint: validation, identity, registry, and the RunSpec design axis."""

import json

import pytest

from repro.accelerator.design import (
    BUILTIN_DESIGNS,
    DESIGN_KNOBS,
    DesignPoint,
    SGCN_DESIGN,
    field_names,
)
from repro.accelerator.registry import (
    ACCELERATORS,
    DESIGN_POINTS,
    get_accelerator,
    get_design,
    register_design,
    unregister_accelerator,
)
from repro.accelerator.simulator import AcceleratorModel
from repro.core.runspec import RunSpec
from repro.core.session import Session
from repro.errors import ConfigurationError, FormatError

TINY = dict(max_vertices=64, num_layers=4)


# --------------------------------------------------------------------------- #
# Validation (satellite: knobs checked at construction)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "knobs",
    [
        {"tiling_fill_fraction": 0.0},
        {"tiling_fill_fraction": -1.0},
        {"tiling_fill_fraction": float("nan")},
        {"tiling_fill_fraction": 100.0},
        {"psum_buffer_fraction": 0.0},
        {"psum_buffer_fraction": 1.5},
        {"pinned_cache_fraction": -0.25},
        {"pinned_cache_fraction": 2.0},
        {"aggregation_compute_scale": 0.0},
        {"aggregation_compute_scale": 1.2},
        {"engine_partition": "diagonal"},
        {"execution_order": "sideways"},
        {"assumed_tiling_sparsity": 1.0},
        {"assumed_tiling_sparsity": -0.1},
        {"psum_traffic_factor": -1.0},
        {"dataflow_feature_passes": 0},
        {"slice_size": 0},
    ],
)
def test_bad_knob_values_raise_at_construction(knobs):
    with pytest.raises(ConfigurationError):
        DesignPoint(name="bad", **knobs)


def test_empty_name_rejected():
    with pytest.raises(ConfigurationError, match="name"):
        DesignPoint(name="  ")


def test_unknown_format_raises_format_error():
    with pytest.raises(FormatError):
        DesignPoint(name="x", feature_format="nope")


def test_engn_style_deliberate_overflow_is_legal():
    # Coarse vertex tiling overflows the cache on purpose (EnGN uses 3.0);
    # only nonsense values beyond the documented bound are rejected.
    assert DesignPoint(name="coarse", tiling_fill_fraction=3.0).tiling_fill_fraction == 3.0


def test_derive_validates_and_rejects_unknown_knobs():
    base = BUILTIN_DESIGNS["gcnax"]
    derived = base.derive(tiling_fill_fraction=0.5, sparse_aggregation_compute=True)
    assert derived.tiling_fill_fraction == 0.5
    assert derived.name == base.name
    with pytest.raises(ConfigurationError, match="unknown design knob"):
        base.derive(warp_speed=9)
    with pytest.raises(ConfigurationError):
        base.derive(psum_buffer_fraction=0.0)


# --------------------------------------------------------------------------- #
# Identity / round-trips
# --------------------------------------------------------------------------- #
def test_every_registered_design_round_trips():
    assert len(DESIGN_POINTS) >= 9
    for name, design in DESIGN_POINTS.items():
        rebuilt = DesignPoint.from_dict(design.to_dict())
        assert rebuilt == design, name
        assert hash(rebuilt) == hash(design), name
        # to_dict() must be JSON-serialisable as-is.
        json.dumps(design.to_dict())


def test_from_dict_rejects_unknown_fields():
    data = BUILTIN_DESIGNS["gcnax"].to_dict()
    data["mystery"] = True
    with pytest.raises(ConfigurationError, match="unknown design point field"):
        DesignPoint.from_dict(data)


def test_with_format_copies_equal_identically_configured_points():
    # Satellite: a with_format copy must compare/hash equal to an
    # identically-configured point — including explicit spellings of the
    # format's defaults.
    assert SGCN_DESIGN.with_format("beicsr") == SGCN_DESIGN
    assert SGCN_DESIGN.with_format("beicsr", slice_size=96) == SGCN_DESIGN
    assert hash(SGCN_DESIGN.with_format("beicsr", slice_size=96)) == hash(SGCN_DESIGN)
    custom = SGCN_DESIGN.with_format("beicsr", slice_size=128)
    assert custom != SGCN_DESIGN
    assert custom == SGCN_DESIGN.derive(slice_size=128)
    # Formats without a slice knob normalise the slice away entirely.
    dense_a = SGCN_DESIGN.with_format("dense")
    dense_b = SGCN_DESIGN.derive(feature_format="dense", slice_size=None)
    assert dense_a == dense_b
    assert dense_a.slice_size is None


def test_builtin_shim_classes_lift_to_the_registered_designs():
    # The deprecated subclasses and the registered design points must be the
    # same design — attribute drift between them would silently fork the
    # accelerator definitions.
    from repro.accelerator import baselines, sgcn

    shims = {
        "gcnax": baselines.GCNAXAccelerator,
        "hygcn": baselines.HyGCNAccelerator,
        "awb_gcn": baselines.AWBGCNAccelerator,
        "engn": baselines.EnGNAccelerator,
        "igcn": baselines.IGCNAccelerator,
        "sgcn": sgcn.SGCNAccelerator,
        "sgcn_no_sac": sgcn.SGCNNoSACAccelerator,
        "sgcn_nonsliced": sgcn.SGCNNonSlicedAccelerator,
        "sgcn_packed": sgcn.SGCNPackedAccelerator,
    }
    assert set(shims) == set(BUILTIN_DESIGNS)
    for name, cls in shims.items():
        assert cls().design == BUILTIN_DESIGNS[name], name


def test_shim_and_design_models_simulate_identically():
    from repro.accelerator.sgcn import SGCNAccelerator
    from repro.graphs.datasets import load_dataset

    dataset = load_dataset("cora", max_vertices=96, num_layers=4)
    via_shim = SGCNAccelerator().simulate(dataset)
    via_design = AcceleratorModel(BUILTIN_DESIGNS["sgcn"]).simulate(dataset)
    assert json.dumps(via_shim.to_dict(), sort_keys=True) == json.dumps(
        via_design.to_dict(), sort_keys=True
    )


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def test_register_design_directly():
    point = BUILTIN_DESIGNS["gcnax"].derive(tiling_fill_fraction=0.5)
    point = DesignPoint.from_dict({**point.to_dict(), "name": "halftile"})
    register_design(point, aliases=("half-tile",))
    try:
        assert get_design("halftile") == point
        assert get_design("half-tile") == point
        model = get_accelerator("halftile")
        assert model.design == point
        assert model.name == "halftile"
    finally:
        unregister_accelerator("halftile")
    assert "halftile" not in ACCELERATORS
    assert "halftile" not in DESIGN_POINTS


def test_register_design_rejects_duplicates():
    with pytest.raises(ConfigurationError, match="already registered"):
        register_design(BUILTIN_DESIGNS["sgcn"])


def test_get_design_raises_for_unknown_names():
    with pytest.raises(ConfigurationError, match="unknown accelerator"):
        get_design("not-a-design")


# --------------------------------------------------------------------------- #
# Session integration (memoization by design identity)
# --------------------------------------------------------------------------- #
def test_session_dedupes_native_format_spelled_explicitly():
    session = Session()
    plain = session.accelerator("sgcn")
    explicit = session.accelerator("sgcn", feature_format="beicsr")
    assert explicit is plain  # equal design point -> same model instance


def test_session_design_overrides_build_distinct_models():
    session = Session()
    base = session.accelerator("gcnax")
    half = session.accelerator("gcnax", design={"tiling_fill_fraction": 0.5})
    assert half is not base
    assert half.design.tiling_fill_fraction == 0.5
    assert session.accelerator("gcnax", design={"tiling_fill_fraction": 0.5}) is half
    # A design override that spells out the registered value resolves to the
    # same point, hence the same model.
    same = session.accelerator("gcnax", design={"tiling_fill_fraction": 0.95})
    assert same is base


def test_session_run_threads_design_axis():
    session = Session()
    native = session.run(RunSpec(dataset="cora", accelerator="gcnax", **TINY))
    overridden = session.run(
        RunSpec(
            dataset="cora",
            accelerator="gcnax",
            design={"feature_format": "beicsr", "sparse_aggregation_compute": True},
            **TINY,
        )
    )
    assert overridden.dram_traffic_bytes != native.dram_traffic_bytes


def test_session_rejects_design_with_preresolved_accelerator():
    session = Session()
    spec = RunSpec(
        dataset="cora",
        accelerator="gcnax",
        design={"tiling_fill_fraction": 0.5},
        **TINY,
    )
    with pytest.raises(ConfigurationError, match="design overrides"):
        session.run(spec, accelerator=session.accelerator("gcnax"))


# --------------------------------------------------------------------------- #
# RunSpec design axis
# --------------------------------------------------------------------------- #
def test_design_axis_enters_identity_only_when_set():
    plain = RunSpec(dataset="cora", accelerator="sgcn")
    empty = RunSpec(dataset="cora", accelerator="sgcn", design={})
    assert empty.design is None
    assert empty.scenario_id == plain.scenario_id
    assert "design" not in plain.key()
    overridden = RunSpec(
        dataset="cora", accelerator="sgcn", design={"tiling_fill_fraction": 0.5}
    )
    assert overridden.scenario_id != plain.scenario_id
    assert overridden.key()["design"] == {"tiling_fill_fraction": 0.5}
    assert "tiling_fill_fraction=0.5" in overridden.label()


def test_design_axis_round_trips_and_validates():
    spec = RunSpec(
        dataset="cora",
        accelerator="gcnax",
        design={"feature_format": "beicsr", "tiling_fill_fraction": 0.5},
    )
    spec.validate()
    assert RunSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ConfigurationError, match="unknown design knob"):
        RunSpec(
            dataset="cora", accelerator="gcnax", design={"bogus": 1}
        ).validate()
    with pytest.raises(ConfigurationError):
        RunSpec(
            dataset="cora",
            accelerator="gcnax",
            design={"psum_buffer_fraction": 0.0},
        ).validate()


def test_design_knobs_cover_simulation_fields_only():
    assert set(DESIGN_KNOBS) <= set(field_names())
    for excluded in ("name", "display_name", "execution_order", "target_layers"):
        assert excluded not in DESIGN_KNOBS


# --------------------------------------------------------------------------- #
# Review regressions
# --------------------------------------------------------------------------- #
def test_boolean_knobs_reject_truthy_strings():
    # "False" is truthy: accepting it would silently invert the design while
    # the run identity claims the opposite.
    with pytest.raises(ConfigurationError, match="boolean"):
        DesignPoint(name="x", uses_destination_tiling="False")
    with pytest.raises(ConfigurationError, match="boolean"):
        BUILTIN_DESIGNS["gcnax"].derive(column_product="True")


def test_wrapped_models_mirror_every_knob_attribute():
    # A model wrapping an arbitrary design point must report that design's
    # values through the legacy class-attribute API, not base-class defaults.
    model = AcceleratorModel(BUILTIN_DESIGNS["awb_gcn"])
    assert model.psum_traffic_factor == 1.0
    assert model.combination_zero_skipping is True
    assert model.sparse_first_layer is True
    engn = AcceleratorModel(BUILTIN_DESIGNS["engn"])
    assert engn.tiling_fill_fraction == 3.0
    assert engn.pins_high_degree_vertices is True
    sgcn = AcceleratorModel(BUILTIN_DESIGNS["sgcn"])
    assert sgcn.engine_partition == "sac"
    assert sgcn.feature_format_name == "beicsr"


def test_get_design_detects_temporary_shadowing():
    from repro.accelerator.registry import temporary_accelerator

    original = get_design("gcnax")
    assert original == BUILTIN_DESIGNS["gcnax"]
    with temporary_accelerator(
        "gcnax", lambda: AcceleratorModel(BUILTIN_DESIGNS["hygcn"])
    ):
        # The recorded point no longer describes what the registry builds.
        assert get_design("gcnax") is None
        spec = RunSpec(
            dataset="cora", accelerator="gcnax",
            design={"tiling_fill_fraction": 0.5},
        )
        spec.validate()  # falls back to the live instance's design
    assert get_design("gcnax") == original


def test_session_rejects_non_knob_design_keys():
    session = Session()
    with pytest.raises(ConfigurationError, match="unknown design knob"):
        session.accelerator("gcnax", design={"name": "not-gcnax"})
    # The pre-resolved-dataset path must not bypass the check either.
    from repro.graphs.datasets import load_dataset

    dataset = load_dataset("cora", max_vertices=64, num_layers=4)
    spec = RunSpec(dataset="cora", accelerator="gcnax", **TINY)
    spec = RunSpec.from_dict({**spec.to_dict(), "design": {"name": "evil"}})
    with pytest.raises(ConfigurationError, match="unknown design knob"):
        session.run(spec, dataset=dataset)


def test_design_axis_canonicalises_values_and_drops_noops():
    # Spelling variants of the same configuration share one identity…
    upper = RunSpec(dataset="cora", accelerator="gcnax",
                    design={"feature_format": "BEICSR"})
    lower = RunSpec(dataset="cora", accelerator="gcnax",
                    design={"feature_format": "beicsr"})
    assert upper.scenario_id == lower.scenario_id
    assert upper.design == {"feature_format": "beicsr"}
    # …and overrides equal to the registered design vanish entirely.
    noop = RunSpec(dataset="cora", accelerator="gcnax",
                   design={"column_product": False})
    assert noop.design is None
    assert noop.scenario_id == RunSpec(dataset="cora", accelerator="gcnax").scenario_id
    explicit_default = RunSpec(dataset="cora", accelerator="sgcn",
                               design={"slice_size": 96, "engine_partition": "sac"})
    assert explicit_default.design is None


def test_legacy_attribute_mutation_still_reaches_simulate():
    from repro.accelerator.baselines import GCNAXAccelerator
    from repro.graphs.datasets import load_dataset

    dataset = load_dataset("pubmed", max_vertices=128, num_layers=4)
    baseline = GCNAXAccelerator().simulate(dataset)
    mutated = GCNAXAccelerator()
    mutated.tiling_fill_fraction = 0.2
    result = mutated.simulate(dataset)
    assert result.dram_traffic_bytes != baseline.dram_traffic_bytes
    # The mutation is equivalent to deriving the design point explicitly.
    derived = AcceleratorModel(
        BUILTIN_DESIGNS["gcnax"].derive(tiling_fill_fraction=0.2)
    ).simulate(dataset)
    assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
        derived.to_dict(), sort_keys=True
    )


def test_explicit_format_default_shares_identity():
    with_default = RunSpec(dataset="cora", accelerator="gcnax",
                           design={"feature_format": "beicsr", "slice_size": 96})
    without = RunSpec(dataset="cora", accelerator="gcnax",
                      design={"feature_format": "beicsr"})
    assert with_default.scenario_id == without.scenario_id
    assert with_default.design == {"feature_format": "beicsr"}


def test_ineffective_slice_size_override_errors():
    with pytest.raises(ConfigurationError, match="no slice knob"):
        RunSpec(dataset="cora", accelerator="gcnax", design={"slice_size": 128})
    with pytest.raises(ConfigurationError, match="no slice knob"):
        RunSpec(dataset="cora", accelerator="sgcn",
                design={"feature_format": "beicsr_nonsliced", "slice_size": 128})


def test_format_axis_and_design_format_knobs_conflict():
    # Rejected at construction (deriving format knobs against the base
    # design while the axis would replace the format is never meaningful)…
    with pytest.raises(ConfigurationError, match="one mechanism only"):
        RunSpec(dataset="cora", accelerator="sgcn",
                feature_format="dense",
                design={"feature_format": "beicsr", "slice_size": 128})
    with pytest.raises(ConfigurationError, match="one mechanism only"):
        RunSpec(dataset="cora", accelerator="gcnax",
                feature_format="beicsr", design={"slice_size": 128})
    # …and independently by Session.accelerator for direct calls.
    session = Session()
    with pytest.raises(ConfigurationError, match="one mechanism only"):
        session.accelerator("sgcn", feature_format="dense",
                            design={"feature_format": "beicsr"})


def test_numeric_knob_spellings_share_identity_and_hash():
    as_int = RunSpec(dataset="cora", accelerator="gcnax",
                     design={"tiling_fill_fraction": 1})
    as_float = RunSpec(dataset="cora", accelerator="gcnax",
                       design={"tiling_fill_fraction": 1.0})
    assert as_int == as_float
    assert hash(as_int) == hash(as_float)
    assert as_int.scenario_id == as_float.scenario_id
    assert BUILTIN_DESIGNS["gcnax"].derive(tiling_fill_fraction=1) == (
        BUILTIN_DESIGNS["gcnax"].derive(tiling_fill_fraction=1.0)
    )


def test_use_format_preserves_legacy_attribute_mutations():
    from repro.accelerator.baselines import GCNAXAccelerator
    from repro.graphs.datasets import load_dataset

    model = GCNAXAccelerator()
    model.tiling_fill_fraction = 0.5
    copy = model.use_format("beicsr")
    assert copy.design.tiling_fill_fraction == 0.5
    dataset = load_dataset("cora", max_vertices=96, num_layers=4)
    expected = AcceleratorModel(
        BUILTIN_DESIGNS["gcnax"].derive(
            tiling_fill_fraction=0.5, feature_format="beicsr"
        )
    ).simulate(dataset)
    assert json.dumps(copy.simulate(dataset).to_dict(), sort_keys=True) == (
        json.dumps(expected.to_dict(), sort_keys=True)
    )


def test_registry_models_expose_slice_size():
    assert get_accelerator("sgcn").slice_size == 96
    assert get_accelerator("gcnax").slice_size is None
    assert AcceleratorModel(SGCN_DESIGN.derive(slice_size=128)).slice_size == 128


def test_overridden_build_context_hook_is_still_honored():
    from repro.accelerator.sgcn import SGCNAccelerator
    from repro.graphs.datasets import load_dataset

    calls = []

    class Hooked(SGCNAccelerator):
        def _build_context(self, dataset, config, workloads, trace_cache=None):
            context = super()._build_context(dataset, config, workloads, trace_cache)
            calls.append(context.cache_lines)
            # Legacy-style customisation: halve the cache capacity.
            context.cache_lines = max(1, context.cache_lines // 2)
            return context

    dataset = load_dataset("pubmed", max_vertices=128, num_layers=4)
    hooked = Hooked().simulate(dataset)
    plain = SGCNAccelerator().simulate(dataset)
    assert calls  # the hook ran
    assert hooked.metadata["cache_lines"] == plain.metadata["cache_lines"] // 2
