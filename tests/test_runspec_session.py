"""RunSpec/Session API: validation, round-trips, memoization, shim parity."""

from __future__ import annotations

import json

import pytest

import repro.core.session as session_module
from repro import RunSpec, Session, compare_accelerators, simulate
from repro.errors import ConfigurationError, FormatError, SimulationError
from repro.graphs.datasets import load_dataset

TINY = dict(max_vertices=64, num_layers=4)


# --------------------------------------------------------------------------- #
# RunSpec validation and serialisation
# --------------------------------------------------------------------------- #
def test_runspec_validate_accepts_good_spec():
    spec = RunSpec(dataset="cora", accelerator="sgcn", **TINY)
    assert spec.validate() is spec


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(dataset="atlantis", accelerator="sgcn"), "unknown dataset"),
        (dict(dataset="cora", accelerator="tpu"), "unknown accelerator"),
        (dict(dataset="cora", accelerator="sgcn", variant="gat"), "variant"),
        (dict(dataset="cora", accelerator="sgcn", num_layers=0), "num_layers"),
        (dict(dataset="cora", accelerator="sgcn", max_vertices=1), "max_vertices"),
        (dict(dataset="cora", accelerator="sgcn", max_sampled_layers=0),
         "max_sampled_layers"),
        (dict(dataset="cora", accelerator="sgcn", overrides={"warp": 1}),
         "unknown SystemConfig override"),
    ],
)
def test_runspec_validate_rejects_bad_fields(kwargs, match):
    with pytest.raises(ConfigurationError, match=match):
        RunSpec(**kwargs).validate()


def test_runspec_validate_rejects_unknown_format_override():
    spec = RunSpec(dataset="cora", accelerator="sgcn", feature_format="parquet")
    with pytest.raises(FormatError, match="unknown format"):
        spec.validate()


def test_runspec_dict_round_trip_including_new_fields():
    spec = RunSpec(
        dataset="pubmed", accelerator="awb-gcn", variant="sage", seed=3,
        max_vertices=256, num_layers=12, feature_format="BEICSR",
        overrides={"cache_capacity_bytes": 262144}, tag="x",
    )
    rebuilt = RunSpec.from_dict(spec.to_dict())
    assert rebuilt == spec
    assert rebuilt.scenario_id == spec.scenario_id
    assert rebuilt.accelerator == "awb_gcn"
    assert rebuilt.feature_format == "beicsr"  # canonical folding


def test_feature_format_only_enters_identity_when_set():
    plain = RunSpec(dataset="cora", accelerator="sgcn")
    assert "feature_format" not in plain.key()
    assert "feature_format" not in plain.to_dict()
    overridden = RunSpec(dataset="cora", accelerator="sgcn", feature_format="csr")
    assert overridden.key()["feature_format"] == "csr"
    assert overridden.scenario_id != plain.scenario_id


def test_run_id_aliases_scenario_id():
    spec = RunSpec(dataset="cora", accelerator="sgcn")
    assert spec.run_id == spec.scenario_id


# --------------------------------------------------------------------------- #
# scenario_id stability (content-addressed cache compatibility)
# --------------------------------------------------------------------------- #
#: Frozen (kwargs, scenario_id) pairs captured from the pre-RunSpec Scenario
#: implementation.  A change here invalidates every existing ResultStore
#: cache — bump repro.experiments.store.SCHEMA_VERSION if you mean it.
GOLDEN_SCENARIO_IDS = [
    ({"dataset": "cora", "accelerator": "sgcn"}, "efb5953a7650"),
    ({"dataset": "CORA", "accelerator": "SGCN", "tag": "label"}, "efb5953a7650"),
    ({"dataset": "cora", "accelerator": "i-gcn"}, "94e0c71c2b54"),
    ({"dataset": "pubmed", "accelerator": "awb-gcn", "variant": "sage",
      "seed": 3, "max_vertices": 256, "num_layers": 12,
      "overrides": {"cache_capacity_bytes": 262144, "dram": "hbm1"},
      "tag": "x"}, "a7e424b1b8b1"),
    ({"dataset": "citeseer", "accelerator": "gcnax", "variant": "gin",
      "seed": 7, "max_vertices": 128, "max_sampled_layers": 4,
      "num_layers": 8}, "d5ce3ecdc608"),
    ({"dataset": "reddit", "accelerator": "hygcn",
      "overrides": {"num_engines": 16, "dram_bandwidth_gbps": 512.0}},
     "c5f8c332a8d0"),
    ({"dataset": "github", "accelerator": "engn", "seed": 2,
      "overrides": {"pipeline_phases": False}}, "7a4c2c24b090"),
    ({"dataset": "yelp", "accelerator": "sgcn_no_sac", "max_vertices": 4096},
     "ed297669d299"),
]


@pytest.mark.parametrize("kwargs, expected", GOLDEN_SCENARIO_IDS)
def test_scenario_id_matches_pre_runspec_golden(kwargs, expected):
    assert RunSpec(**kwargs).scenario_id == expected


# --------------------------------------------------------------------------- #
# Session memoization
# --------------------------------------------------------------------------- #
def test_session_reuses_one_dataset_across_a_batch(monkeypatch):
    calls = []
    real_load = session_module._load_dataset

    def counting_load(name, **kwargs):
        calls.append(name)
        return real_load(name, **kwargs)

    monkeypatch.setattr(session_module, "_load_dataset", counting_load)
    session = Session()
    specs = [
        RunSpec(dataset="cora", accelerator=name, **TINY)
        for name in ("gcnax", "hygcn", "sgcn")
    ]
    results = session.run_many(specs)
    assert all(result is not None for result in results)
    assert calls == ["cora"]  # one topology build for three runs
    assert session.load_dataset("cora", max_vertices=64, num_layers=4) is (
        session.load_dataset("cora", max_vertices=64, num_layers=4)
    )


def test_session_dataset_cache_is_bounded_lru():
    session = Session(max_cached_datasets=2)
    a = session.load_dataset("cora", max_vertices=64)
    session.load_dataset("citeseer", max_vertices=64)
    assert session.load_dataset("cora", max_vertices=64) is a  # refreshed
    session.load_dataset("pubmed", max_vertices=64)  # evicts citeseer
    assert len(session._datasets) == 2
    assert session.load_dataset("cora", max_vertices=64) is a  # survived


def test_session_memoizes_accelerator_instances():
    session = Session()
    assert session.accelerator("sgcn") is session.accelerator("SGCN")
    assert session.accelerator("i-gcn") is session.accelerator("igcn")
    overridden = session.accelerator("gcnax", feature_format="csr")
    assert overridden is not session.accelerator("gcnax")
    assert overridden.feature_format.name == "csr"


def test_session_cache_does_not_outlive_registry_entries():
    from repro.accelerator.registry import temporary_accelerator
    from repro.accelerator.sgcn import SGCNAccelerator

    session = Session()
    with temporary_accelerator("mockacc", SGCNAccelerator):
        assert session.accelerator("mockacc").name == "sgcn"
    # The registration is gone; the session must not serve its cached model.
    with pytest.raises(ConfigurationError, match="unknown accelerator"):
        session.accelerator("mockacc")

    class Other(SGCNAccelerator):
        display_name = "Other"

    with temporary_accelerator("mockacc", Other):
        # Re-registered under a different factory: the cache must rebuild.
        assert isinstance(session.accelerator("mockacc"), Other)


def test_session_compare_rejects_mixed_datasets_and_duplicates():
    session = Session()
    mixed = [
        RunSpec(dataset="cora", accelerator="gcnax", **TINY),
        RunSpec(dataset="pubmed", accelerator="sgcn", **TINY),
    ]
    with pytest.raises(SimulationError, match="same dataset"):
        session.compare(mixed, baseline="gcnax")
    duplicated = [
        RunSpec(dataset="cora", accelerator="gcnax", seed=0, **TINY),
        RunSpec(dataset="cora", accelerator="gcnax", seed=1, **TINY),
    ]
    with pytest.raises(SimulationError, match="one spec per accelerator"):
        session.compare(duplicated, baseline="gcnax")


def test_session_detects_format_reregistration():
    from repro.formats.base import FeatureFormat
    from repro.formats.csr import CSRFeatureFormat
    from repro.formats.registry import temporary_format

    session = Session()
    real = session.accelerator("gcnax", feature_format="csr")
    assert isinstance(real.feature_format, CSRFeatureFormat)

    class MockCSR(CSRFeatureFormat):
        pass

    with temporary_format("csr", MockCSR):
        shadowed = session.accelerator("gcnax", feature_format="csr")
        assert isinstance(shadowed.feature_format, MockCSR)
    # Restored registration: the cache rebuilds with the real format again.
    assert not isinstance(
        session.accelerator("gcnax", feature_format="csr").feature_format, MockCSR
    )


def test_run_rejects_format_override_with_preresolved_accelerator():
    session = Session()
    spec = RunSpec(dataset="cora", accelerator="gcnax", feature_format="csr", **TINY)
    with pytest.raises(ConfigurationError, match="feature_format"):
        session.run(spec, accelerator=session.accelerator("gcnax"))


def test_config_for_layers_overrides_on_session_base():
    from repro.core.config import SystemConfig

    plain = Session()
    spec = RunSpec(dataset="cora", accelerator="sgcn", **TINY)
    assert plain.config_for(spec) is None  # model defaults apply

    overridden = RunSpec(dataset="cora", accelerator="sgcn",
                         overrides={"num_engines": 4}, **TINY)
    config = plain.config_for(overridden)
    assert config.engines.num_aggregation_engines == 4

    base = SystemConfig()
    with_base = Session(config=base)
    assert with_base.config_for(spec) is base
    layered = with_base.config_for(overridden)
    assert layered.engines.num_aggregation_engines == 4
    assert layered.cache == base.cache


def test_compare_shim_accepts_custom_instance_baseline():
    from repro.accelerator.sgcn import SGCNAccelerator

    class MyAccel(SGCNAccelerator):
        name = "My-Accel"

    dataset = load_dataset("cora", max_vertices=64, num_layers=4)
    comparison = compare_accelerators(
        dataset, [MyAccel(), "gcnax"], baseline="My-Accel"
    )
    assert comparison.baseline == "My-Accel"
    assert comparison.speedups("My-Accel")["My-Accel"] == pytest.approx(1.0)


def test_compare_shim_accepts_alias_baseline():
    dataset = load_dataset("cora", max_vertices=64, num_layers=4)
    comparison = compare_accelerators(
        dataset, ["awb-gcn", "gcnax"], baseline="awb-gcn"
    )
    assert comparison.baseline == "awb_gcn"
    assert comparison.speedups("awb_gcn")["awb_gcn"] == pytest.approx(1.0)


def test_use_format_copies_instead_of_mutating_cached_models():
    session = Session()
    native = session.accelerator("sgcn")
    native_format = native.feature_format.name
    overridden = native.use_format("csr")
    assert overridden is not native
    assert overridden.feature_format.name == "csr"
    # The session's memoized instance is untouched, so later runs with no
    # format override still use the design's native format.
    assert session.accelerator("sgcn").feature_format.name == native_format


def test_feature_format_override_changes_traffic():
    session = Session()
    native = session.run(RunSpec(dataset="cora", accelerator="gcnax", **TINY))
    compressed = session.run(
        RunSpec(dataset="cora", accelerator="gcnax", feature_format="beicsr", **TINY)
    )
    assert compressed.total_cycles > 0
    assert compressed.dram_traffic_bytes != native.dram_traffic_bytes


# --------------------------------------------------------------------------- #
# Shim equivalence: classic API == Session API, byte for byte
# --------------------------------------------------------------------------- #
def _as_bytes(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def test_simulate_shim_is_byte_identical_to_session_run():
    dataset = load_dataset("cora", max_vertices=64, num_layers=4)
    via_shim = simulate(dataset, "sgcn", seed=1)
    via_session = Session().run(
        RunSpec(dataset="cora", accelerator="sgcn", seed=1, **TINY)
    )
    # The spec path loads the dataset itself; seed drives both topology and
    # sparsity there, so compare against an identically-loaded instance.
    spec_dataset = load_dataset("cora", max_vertices=64, num_layers=4, seed=1)
    via_shim_seeded = simulate(spec_dataset, "sgcn", seed=1)
    assert _as_bytes(via_shim_seeded) == _as_bytes(via_session)
    assert via_shim.total_cycles > 0  # seed-0 topology variant still runs


def test_simulate_shim_is_byte_identical_for_named_dataset():
    via_shim = simulate("cora", "sgcn", max_vertices=64)
    via_session = Session().run(RunSpec(dataset="cora", accelerator="sgcn",
                                        max_vertices=64))
    assert _as_bytes(via_shim) == _as_bytes(via_session)


def test_compare_shim_is_byte_identical_to_session_compare():
    specs = [
        RunSpec(dataset="cora", accelerator=name, **TINY)
        for name in ("gcnax", "sgcn")
    ]
    via_session = Session().compare(specs, baseline="gcnax")
    dataset = load_dataset("cora", max_vertices=64, num_layers=4)
    via_shim = compare_accelerators(dataset, ["gcnax", "sgcn"], baseline="gcnax")
    assert json.dumps(via_shim.to_dict(), sort_keys=True) == json.dumps(
        via_session.to_dict(), sort_keys=True
    )


# --------------------------------------------------------------------------- #
# Session batch semantics
# --------------------------------------------------------------------------- #
def test_run_many_isolates_failures_via_on_error():
    session = Session()
    good = RunSpec(dataset="cora", accelerator="sgcn", **TINY)
    bad = RunSpec(dataset="atlantis", accelerator="sgcn", **TINY)
    errors = []
    results = session.run_many(
        [good, bad, good],
        on_error=lambda index, spec, exc: errors.append((index, spec.dataset)),
    )
    assert results[0] is not None and results[2] is not None
    assert results[1] is None
    assert errors == [(1, "atlantis")]


def test_run_many_raises_without_on_error():
    session = Session()
    bad = RunSpec(dataset="atlantis", accelerator="sgcn", **TINY)
    with pytest.raises(ConfigurationError, match="unknown dataset"):
        session.run_many([bad])


def test_run_many_annotates_results_with_spec_identity():
    session = Session()
    spec = RunSpec(dataset="cora", accelerator="sgcn", **TINY)
    (result,) = session.run_many([spec])
    assert result.metadata["scenario_id"] == spec.scenario_id
    assert result.metadata["scenario"] == spec.to_dict()


def test_session_compare_fails_fast_on_missing_baseline(monkeypatch):
    from repro.accelerator.simulator import AcceleratorModel

    def explode(self, *args, **kwargs):
        raise AssertionError("simulated before baseline validation")

    monkeypatch.setattr(AcceleratorModel, "simulate", explode)
    session = Session()
    specs = [RunSpec(dataset="cora", accelerator="sgcn", **TINY)]
    with pytest.raises(SimulationError, match="baseline"):
        session.compare(specs, baseline="gcnax")
    with pytest.raises(SimulationError, match="at least one"):
        session.compare([], baseline="gcnax")


def test_run_pack_routes_through_run_many():
    session = Session()
    pairs = session.run_pack("depth-sweep", max_vertices=48)
    assert pairs and all(result is not None for _, result in pairs)
    spec, result = pairs[0]
    assert result.metadata["scenario_id"] == spec.scenario_id
