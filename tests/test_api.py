"""API-boundary behaviour: smoke path, empty selections, variant checks."""

from __future__ import annotations

import pytest

from repro import (
    ConfigurationError,
    SimulationError,
    compare_accelerators,
    simulate,
)
from repro.graphs.datasets import load_dataset


@pytest.fixture(scope="module")
def tiny_dataset():
    return load_dataset("cora", max_vertices=64, num_layers=4)


def test_simulate_smoke(tiny_dataset):
    result = simulate(tiny_dataset, "sgcn")
    assert result.accelerator == "sgcn"
    assert result.dataset == "cora"
    assert result.total_cycles > 0
    assert result.dram_traffic_bytes > 0
    assert result.energy.total_joules > 0
    assert len(result.layers) == tiny_dataset.num_layers  # 4 <= sampling budget


def test_compare_smoke_and_speedups(tiny_dataset):
    comparison = compare_accelerators(tiny_dataset, ["gcnax", "sgcn"])
    speedups = comparison.speedups("gcnax")
    assert speedups["gcnax"] == pytest.approx(1.0)
    assert speedups["sgcn"] > 0


def test_compare_empty_selection_raises(tiny_dataset):
    with pytest.raises(SimulationError, match="empty accelerator"):
        compare_accelerators(tiny_dataset, [])


def test_compare_none_defaults_to_paper_set():
    # Only check the default resolution logic, not a full 6-accelerator run:
    # an empty list must NOT silently fall back to the paper set.
    from repro.core import api

    assert api.PAPER_COMPARISON == ("gcnax", "hygcn", "awb_gcn", "engn", "igcn", "sgcn")


def test_unknown_variant_fails_fast(tiny_dataset):
    with pytest.raises(ConfigurationError, match="variant"):
        simulate(tiny_dataset, "sgcn", variant="transformer")
    with pytest.raises(ConfigurationError, match="variant"):
        compare_accelerators(tiny_dataset, ["sgcn"], variant="gat", baseline="sgcn")


def test_variant_is_case_insensitive(tiny_dataset):
    result = simulate(tiny_dataset, "sgcn", variant="GCN")
    assert result.metadata["variant"] == "gcn"


def test_unknown_accelerator_raises(tiny_dataset):
    with pytest.raises(ConfigurationError, match="unknown accelerator"):
        simulate(tiny_dataset, "tpu")


def test_explicit_cap_with_dataset_instance_raises(tiny_dataset):
    # Historically max_vertices was silently dropped when a Dataset instance
    # was passed; now the contradiction is an error.
    with pytest.raises(ConfigurationError, match="max_vertices"):
        simulate(tiny_dataset, "sgcn", max_vertices=128)
    with pytest.raises(ConfigurationError, match="max_vertices"):
        compare_accelerators(tiny_dataset, ["sgcn"], baseline="sgcn",
                             max_vertices=128)


def test_compare_baseline_checked_before_any_simulation(tiny_dataset, monkeypatch):
    from repro.accelerator.simulator import AcceleratorModel

    def explode(self, *args, **kwargs):
        raise AssertionError("simulated before baseline validation")

    monkeypatch.setattr(AcceleratorModel, "simulate", explode)
    with pytest.raises(SimulationError, match="baseline 'gcnax' was not among"):
        compare_accelerators(tiny_dataset, ["sgcn", "hygcn"], baseline="gcnax")
