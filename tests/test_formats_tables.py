"""Vectorized per-row line-count tables vs the per-row reference walk."""

import numpy as np
import pytest

from repro.formats.base import FeatureLayout, span_line_counts, span_lines
from repro.formats.beicsr import _split_row_nnz
from repro.formats.registry import available_formats, get_format


def reference_counts(layout):
    return np.fromiter(
        (layout.row_read_lines(row).size for row in range(layout.num_rows)),
        dtype=np.int64,
        count=layout.num_rows,
    )


@pytest.mark.parametrize("format_name", available_formats())
def test_row_read_line_counts_match_reference(format_name):
    fmt = get_format(format_name)
    rng = np.random.default_rng(hash(format_name) % (2**32))
    for _ in range(15):
        width = int(rng.integers(1, 300))
        rows = int(rng.integers(1, 50))
        row_nnz = rng.integers(0, width + 1, size=rows).astype(np.int64)
        base_line = int(rng.integers(0, 7))
        layout = fmt.build_layout(row_nnz, width, base_line=base_line)
        got = layout.row_read_line_counts()
        assert got.dtype == np.int64
        assert np.array_equal(got, reference_counts(layout)), (width, row_nnz)


@pytest.mark.parametrize("format_name", available_formats())
def test_counts_consistent_with_row_read_bytes(format_name):
    # For every built-in layout a row's read bytes are its line count x 64.
    fmt = get_format(format_name)
    row_nnz = np.asarray([0, 3, 17, 64], dtype=np.int64)
    layout = fmt.build_layout(row_nnz, 64)
    counts = layout.row_read_line_counts()
    for row in range(layout.num_rows):
        assert layout.row_read_bytes(row) == int(counts[row]) * 64


def test_span_line_counts_matches_span_lines():
    rng = np.random.default_rng(0)
    starts = rng.integers(0, 1000, size=200)
    lengths = rng.integers(0, 400, size=200)
    counts = span_line_counts(starts, lengths)
    for start, length, count in zip(starts.tolist(), lengths.tolist(), counts.tolist()):
        assert count == len(span_lines(start, length))


def test_base_class_fallback_used_by_custom_layouts():
    class TrivialLayout(FeatureLayout):
        def row_read_lines(self, row):
            self._check_row(row)
            return np.arange(row + 1, dtype=np.int64)

        def row_read_bytes(self, row):
            return (row + 1) * 64

        def row_write_bytes(self, row):
            return 0

        def storage_bytes(self):
            return 0

    layout = TrivialLayout(num_rows=5, width=8)
    assert np.array_equal(layout.row_read_line_counts(), np.asarray([1, 2, 3, 4, 5]))


def test_split_row_nnz_matches_round_robin_reference():
    rng = np.random.default_rng(1)
    for _ in range(100):
        width = int(rng.integers(1, 300))
        slice_size = int(rng.integers(1, width + 1))
        rows = int(rng.integers(1, 25))
        row_nnz = rng.integers(0, width + 1, size=rows).astype(np.int64)
        got = _split_row_nnz(row_nnz, width, slice_size)

        num_slices = (width + slice_size - 1) // slice_size
        widths = np.full(num_slices, slice_size, dtype=np.int64)
        if width % slice_size:
            widths[-1] = width % slice_size
        for row in range(rows):
            remaining = int(row_nnz[row])
            base = remaining // num_slices
            counts = np.minimum(np.full(num_slices, base, dtype=np.int64), widths)
            leftover = remaining - int(counts.sum())
            slot = 0
            while leftover > 0:
                if counts[slot] < widths[slot]:
                    counts[slot] += 1
                    leftover -= 1
                slot = (slot + 1) % num_slices
            assert np.array_equal(got[row], counts), (width, slice_size, row_nnz[row])
        assert np.array_equal(got.sum(axis=1), row_nnz)
