"""Golden pin of the lint-findings JSON schema (v1).

Like the BENCH v2 and metrics v1 documents, ``repro lint --json`` output is a
published artifact (CI uploads it), so its shape is frozen here: the document
key set, the per-finding field set, and the rule id/name battery.  Changing
any of these requires bumping ``LINT_SCHEMA_VERSION`` *and* regenerating
``tests/golden_lint_schema.json`` deliberately.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import (
    ALL_RULES,
    LINT_DOCUMENT_KIND,
    LINT_SCHEMA_VERSION,
    findings_document,
    get_rules,
    run_lint,
)

GOLDEN = Path(__file__).resolve().parent / "golden_lint_schema.json"
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def test_lint_schema_matches_golden():
    golden = json.loads(GOLDEN.read_text())
    report = run_lint([FIXTURES / "n2_flag.py"], get_rules())
    document = findings_document(report)

    assert golden["schema_version"] == LINT_SCHEMA_VERSION
    assert golden["kind"] == LINT_DOCUMENT_KIND
    assert document["schema_version"] == golden["schema_version"]
    assert document["kind"] == golden["kind"]
    assert sorted(document) == golden["document_keys"]
    for finding in document["findings"]:
        assert sorted(finding) == golden["finding_fields"]
    for rule in document["rules"]:
        assert sorted(rule) == golden["rule_fields"]
    assert [
        {"id": rule.rule_id, "name": rule.name} for rule in ALL_RULES
    ] == golden["rules"]


def test_document_counts_cover_every_rule():
    report = run_lint([FIXTURES / "s1_pass.py"], get_rules())
    document = findings_document(report)
    golden = json.loads(GOLDEN.read_text())
    assert sorted(document["counts"]) == sorted(
        rule["id"] for rule in golden["rules"]
    )
