"""End-to-end tests of the ``python -m repro`` command line."""

from __future__ import annotations

import csv
import json

import pytest

from repro.experiments.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "paper-comparison" in out
    assert "sgcn" in out


def test_sweep_dry_run_expands_all_packs(capsys):
    assert main(["sweep", "all", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert "nothing simulated" in out
    assert "paper-comparison" in out


def test_run_command_prints_summary(capsys):
    assert main(
        [
            "run", "--dataset", "cora", "--accelerator", "sgcn",
            "--max-vertices", "64", "--layers", "4",
            "--set", "num_engines=4",
        ]
    ) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["dataset"] == "cora"
    assert summary["cycles"] > 0
    assert json.loads(summary["overrides"]) == {"num_engines": 4}


def test_sweep_run_cache_and_export(tmp_path, capsys):
    out_dir = tmp_path / "results"
    argv = [
        "sweep", "hbm-generation",
        "--workers", "2",
        "--out", str(out_dir),
        "--max-vertices", "64",
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "18 simulated, 0 cache hits, 0 failed" in first

    pack_dir = out_dir / "hbm-generation"
    scenario_files = [
        path for path in pack_dir.glob("*.json")
        if path.name not in ("summary.json", "checkpoint.json")
    ]
    assert len(scenario_files) == 18
    assert (pack_dir / "checkpoint.json").is_file()
    with (pack_dir / "summary.csv").open(encoding="utf-8", newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 18
    assert {row["tag"] for row in rows} == {"HBM1", "HBM2"}

    # Second invocation is answered entirely from the cache.
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "0 simulated, 18 cache hits, 0 failed" in second

    # Export merges the per-scenario JSON documents back into a CSV.
    export_path = tmp_path / "merged.csv"
    assert main(["export", str(pack_dir), "--out", str(export_path)]) == 0
    with export_path.open(encoding="utf-8", newline="") as handle:
        merged = list(csv.DictReader(handle))
    assert len(merged) == 18


def test_unknown_pack_is_an_error(capsys):
    assert main(["sweep", "no-such-pack", "--dry-run"]) == 2
    assert "unknown scenario pack" in capsys.readouterr().err
