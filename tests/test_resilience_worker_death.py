"""Worker-death chaos: a SIGKILLed pool worker never hangs or loses a sweep.

The ``kill`` fault action SIGKILLs the hosting worker process on a
deterministic visit schedule (counters are per-process, so every freshly
spawned worker follows the same schedule).  The parent detects the death
through the pool's pid set, waits out a short grace period, then re-runs the
presumed-lost scenarios serially — the parent never arms the plan on the
pool path, so the re-runs cannot re-kill.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import SweepRunner, run_scenario
from repro.experiments.spec import Scenario
from repro.experiments.store import ResultStore
from repro.resilience.faults import FaultPlan, FaultSpec

TINY = dict(max_vertices=64, num_layers=4)

#: Every worker process SIGKILLs itself on its second scenario.
KILL_SECOND_VISIT = [FaultSpec(site="worker:execute", action="kill", after=1, times=1)]


def _scenarios(count):
    datasets = ["cora", "citeseer", "pubmed"]
    return [
        Scenario(dataset=datasets[i % 3], accelerator="sgcn", seed=i, **TINY)
        for i in range(count)
    ]


def _run_with_kills(tmp_path, workers, count):
    store = ResultStore(tmp_path / "cache")
    runner = SweepRunner(
        store=store,
        workers=workers,
        faults=FaultPlan(KILL_SECOND_VISIT),
        force_pool=True,  # a killable pool even for workers=1
        worker_grace_s=0.5,
    )
    return store, runner.run(_scenarios(count))


@pytest.mark.parametrize("workers,count", [(1, 3), (2, 4)])
def test_sigkilled_worker_costs_a_rerun_not_the_sweep(tmp_path, workers, count):
    store, report = _run_with_kills(tmp_path, workers, count)
    scenarios = _scenarios(count)
    # Every scenario completes: survivors in the pool, the lost ones re-run
    # serially in the parent after the grace period.
    assert report.num_failed == 0
    assert len(report.outcomes) == count
    assert [o.scenario.scenario_id for o in report.outcomes] == [
        s.scenario_id for s in scenarios
    ]
    for scenario, outcome in zip(scenarios, report.outcomes):
        assert outcome.ok, outcome.error
        assert store.contains(scenario)
    # Accounting stays exact: nothing double-counted after the re-dispatch.
    assert report.num_simulated == count
    assert report.num_cached == 0


def test_rerun_results_match_an_undisturbed_run(tmp_path):
    _, report = _run_with_kills(tmp_path, 1, 3)
    for scenario, outcome in zip(_scenarios(3), report.outcomes):
        assert outcome.result.summary() == run_scenario(scenario).summary()
